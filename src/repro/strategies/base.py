"""Shared machinery for the remote-data fetching strategies (§5).

All strategies — the baselines BL1–BL3 and EIRES's PFetch, LzEval and Hybrid
— share the same skeleton: they mediate every remote predicate evaluation,
deliver asynchronously fetched elements into the cache, and account for the
stalls they impose on the engine.  The subclasses differ only in the
decision hooks:

* :meth:`FetchStrategy.decide_postpone` — block on missing data or postpone
  the predicate (L1 of LzEval);
* :meth:`FetchStrategy.should_block_obligations` — whether a run carrying
  postponed predicates may keep developing (L2);
* :meth:`FetchStrategy.on_run_created` — prefetch triggering (P1/P2).

The machinery is split into focused modules behind this import surface:
:mod:`repro.strategies.context` (the runtime context and failure modes),
:mod:`repro.strategies.stats` (the ``fetch.*`` counter view),
:mod:`repro.strategies.fetch_plane` (data movement: blocking rounds, async
delivery, staleness fallback), and :mod:`repro.strategies.obligations`
(postponed-predicate resolution).  ``FetchStrategy`` composes them and adds
the lifecycle wiring.
"""

from __future__ import annotations

from typing import Any

from repro.events.event import Event
from repro.nfa.automaton import Transition
from repro.nfa.run import Run
from repro.obs.trace import CAT_OBLIGATION, CAT_RUN
from repro.query.predicates import Predicate
from repro.remote.element import DataKey
from repro.strategies.context import FAIL_CLOSED, FAIL_OPEN, RuntimeContext
from repro.strategies.fetch_plane import FetchPlane

# _evaluate_with is re-exported for existing importers of the pre-split layout.
from repro.strategies.obligations import (  # noqa: F401
    ObligationResolution,
    _evaluate_with,
)
from repro.strategies.stats import (
    DEGRADATION_COUNTER_KEYS,
    RUN_DROP_REASONS,
    STRATEGY_COUNTER_KEYS,
    DropStats,
    StrategyStats,
)

__all__ = [
    "RuntimeContext",
    "StrategyStats",
    "FetchStrategy",
    "FAIL_OPEN",
    "FAIL_CLOSED",
    "STRATEGY_COUNTER_KEYS",
    "DEGRADATION_COUNTER_KEYS",
    "DropStats",
    "RUN_DROP_REASONS",
]


class FetchStrategy(ObligationResolution, FetchPlane):
    """Base class implementing the engine-facing strategy protocol."""

    name = "base"
    uses_cache = True

    def __init__(self) -> None:
        self.ctx: RuntimeContext | None = None
        self.stats = StrategyStats()
        self.drops = DropStats()
        # Purpose of each in-flight async request, deciding the cache tier
        # its response enters (T1 certain for lazy fetches, T2 speculative
        # for prefetches).
        self._purpose: dict[DataKey, str] = {}
        # Values staged by prepare_blocking for the duration of one blocking
        # obligation-resolution round (survives cache eviction races and
        # serves cacheless strategies like BL3).
        self._staged: dict[DataKey, Any] = {}
        # Keys whose fetch terminally failed during the current blocking
        # round: _collect must not re-request them (each re-fetch would stall
        # the engine again), and their predicates resolve per failure_mode.
        self._round_failed: set[DataKey] = set()
        self._in_blocking_round = False
        # Last successfully fetched value per key, for stale-cache fallback
        # when a fresh fetch terminally fails (only kept while enabled).
        self._last_known: dict[DataKey, Any] = {}
        self.last_postpone_ell = 0.0
        # Per-match latency-attribution tracker; attached by the composition
        # root only when tracing is enabled (None keeps the hot path to one
        # ``is None`` check per instrumentation site).
        self.spans = None

    # -- wiring ----------------------------------------------------------------
    def attach(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        if ctx.metrics is not None:
            # Rebind the (still-empty) stats façades onto the framework's
            # shared registry so snapshots include the fetch.* and
            # engine.dropped.* counters.
            self.stats = StrategyStats(ctx.metrics)
            self.drops = DropStats(ctx.metrics)

    @property
    def total_stall_time(self) -> float:
        return self.stats.total_stall_time

    # -- pipeline hooks -----------------------------------------------------------
    def on_event_start(self, event: Event, index: int) -> None:
        """Called before the engine processes ``event``."""
        ctx = self.ctx
        ctx.rates.observe_event(event.event_type or "", event.t)
        self._deliver_due()
        self._fire_scheduled()
        if index % ctx.utility_tick_interval == 0:
            self._utility_tick()

    def on_event_end(self, event: Event, matches: list) -> None:
        """Called after the engine processed ``event`` (subclass hook)."""

    def _utility_tick(self) -> None:
        # The engine is attached after construction; runs_per_state is wired
        # by the pipeline through `bind_engine`.
        if self._engine is not None:
            self.ctx.utility.tick(self.ctx.clock.now, self._engine.runs_per_state())

    _engine = None

    def bind_engine(self, engine) -> None:
        """Give the strategy access to live run counts (for #P_j)."""
        self._engine = engine

    # -- run lifecycle ------------------------------------------------------------
    def on_run_created(self, run: Run) -> None:
        self.ctx.utility.on_run_created(run)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_RUN,
                "create",
                self.ctx.clock.now,
                run_id=tracer.run_ref(run.run_id),
                state=run.state.index,
                bound=len(run.env),
                obligations=len(run.obligations),
            )

    def on_run_dropped(self, run: Run, reason: str) -> None:
        self.drops.record(reason)
        # Obligations that ride a run out of its window, to end of stream,
        # or into a shedding eviction expire deterministically with the run:
        # the data they waited for never arrived in time to matter.
        tracer = self.ctx.tracer
        if run.obligations and reason in ("expired", "flushed", "shed"):
            self.stats.obligations_expired += len(run.obligations)
            if tracer.enabled:
                tracer.emit(
                    CAT_OBLIGATION,
                    "expire",
                    self.ctx.clock.now,
                    run_id=tracer.run_ref(run.run_id),
                    count=len(run.obligations),
                    reason=reason,
                )
        if tracer.enabled:
            tracer.emit(
                CAT_RUN,
                "drop",
                self.ctx.clock.now,
                run_id=tracer.run_ref(run.run_id),
                state=run.state.index,
                reason=reason,
            )
        self.ctx.utility.on_run_dropped(run)

    def observe_guard(self, transition: Transition, passed: bool) -> None:
        self.ctx.rates.observe_guard(transition.index, passed)

    # -- subclass hooks -------------------------------------------------------------
    def _fire_scheduled(self) -> None:
        """Consume scheduler payloads (offset prefetches); default: none."""
        for _ in self.ctx.scheduler.pop_due(self.ctx.clock.now):
            pass

    def _record_history(
        self, transition: Transition, predicate: Predicate, missing: list[DataKey]
    ) -> None:
        """Prefetch hit/miss history bookkeeping; default: none (no prefetch)."""

    def end_of_stream(self) -> None:
        """Cleanup hook after the last event (subclass extension point)."""
        transport = self.ctx.transport
        self.stats.retries = transport.retries
        if transport.breakers is not None:
            self.stats.breaker_opens = transport.breakers.opens

    def describe(self) -> dict[str, Any]:
        data = {"strategy": self.name}
        data.update(self.stats.as_dict())
        return data

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

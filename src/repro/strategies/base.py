"""Shared machinery for the remote-data fetching strategies (§5).

All strategies — the baselines BL1–BL3 and EIRES's PFetch, LzEval and Hybrid
— share the same skeleton: they mediate every remote predicate evaluation,
deliver asynchronously fetched elements into the cache, and account for the
stalls they impose on the engine.  The subclasses differ only in the
decision hooks:

* :meth:`FetchStrategy.decide_postpone` — block on missing data or postpone
  the predicate (L1 of LzEval);
* :meth:`FetchStrategy.should_block_obligations` — whether a run carrying
  postponed predicates may keep developing (L2);
* :meth:`FetchStrategy.on_run_created` — prefetch triggering (P1/P2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.cache.base import Cache
from repro.cache.history import HitHistory
from repro.engine.interface import POSTPONED
from repro.events.event import Event
from repro.nfa.automaton import Automaton, Transition
from repro.nfa.run import Run
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    CAT_FETCH,
    CAT_OBLIGATION,
    CAT_RUN,
    NULL_TRACER,
    Tracer,
    trace_key,
)
from repro.query.errors import RemoteDataUnavailable
from repro.query.predicates import Predicate
from repro.remote.element import DataKey
from repro.remote.transport import Transport
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import FutureScheduler
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator

__all__ = [
    "RuntimeContext",
    "StrategyStats",
    "FetchStrategy",
    "FAIL_OPEN",
    "FAIL_CLOSED",
    "STRATEGY_COUNTER_KEYS",
    "DEGRADATION_COUNTER_KEYS",
]

_PURPOSE_PREFETCH = "prefetch"
_PURPOSE_LAZY = "lazy"

# How a predicate whose remote data is *terminally* unavailable (fetch failed
# after all retries, no stale value to serve) resolves:
# fail-closed — the predicate counts as false: the affected partial match is
#   dropped (no match emitted from unverified data);
# fail-open — the predicate counts as true: the match is emitted despite the
#   missing evidence (availability over strictness).
FAIL_OPEN = "fail_open"
FAIL_CLOSED = "fail_closed"


@dataclass
class RuntimeContext:
    """Everything a strategy needs from the assembled framework."""

    automaton: Automaton
    clock: VirtualClock
    transport: Transport
    cache: Cache | None
    utility: UtilityModel
    rates: RateEstimator
    scheduler: FutureScheduler
    history: HitHistory
    noise: NoiseModel
    omega_fetch: float = 0.7
    ell_pm: float = 0.05
    lookahead_enabled: bool = True
    prefetch_gate_enabled: bool = True
    lazy_gate_enabled: bool = True
    utility_tick_interval: int = 1
    failure_mode: str = FAIL_CLOSED
    stale_serve_enabled: bool = True
    # Observability: the shared metrics registry the stats façades bind to
    # and the trace bus.  Both default to off/None so hand-built contexts
    # (unit tests) behave exactly as before.
    metrics: MetricsRegistry | None = None
    tracer: Tracer = NULL_TRACER


# Every counter a strategy maintains, in report order.  This tuple is the
# single source of truth: ``StrategyStats`` registers exactly these cells,
# ``as_dict()`` reports them in this order, and the fault table derives its
# columns from the degradation subset below — a renamed counter breaks a
# test instead of silently dropping out of a report.
STRATEGY_COUNTER_KEYS = (
    "blocking_stalls",
    "total_stall_time",
    "prefetches_issued",
    "prefetches_suppressed",
    "lazy_postponements",
    "forced_blocks",
    "history_hits",
    "history_misses",
    "fetch_failures",
    "retries",
    "breaker_opens",
    "breaker_skips",
    "obligations_expired",
    "stale_serves",
)

# The counters that stay zero on a healthy network; faulted runs surface
# them in ``repro.metrics.reporting``'s fault table.
DEGRADATION_COUNTER_KEYS = (
    "fetch_failures",
    "retries",
    "breaker_opens",
    "breaker_skips",
    "obligations_expired",
    "stale_serves",
)


class StrategyStats:
    """Counters describing one strategy's behaviour during a run.

    A view over a :class:`~repro.obs.registry.MetricsRegistry`: each counter
    attribute reads and writes a registry cell under ``fetch.<name>``, so a
    metrics snapshot and this façade can never disagree.  Standalone
    construction (unit tests, unattached strategies) binds a private
    registry.
    """

    __slots__ = ("_cells", "extra")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {key: registry.counter(f"fetch.{key}") for key in STRATEGY_COUNTER_KEYS}
        # Stall time accumulates float microseconds; keep the cell float so
        # reports render `0.0` (not `0`) on stall-free runs.
        cell = self._cells["total_stall_time"]
        cell.value = float(cell.value)
        self.extra: dict[str, Any] = {}

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        for key in STRATEGY_COUNTER_KEYS:
            value = self._cells[key].value
            data[key] = round(value, 3) if key == "total_stall_time" else value
        data.update(self.extra)
        return data


def _counter_property(key: str) -> property:
    def _get(self: StrategyStats):
        return self._cells[key].value

    def _set(self: StrategyStats, value) -> None:
        self._cells[key].value = value

    return property(_get, _set)


for _key in STRATEGY_COUNTER_KEYS:
    setattr(StrategyStats, _key, _counter_property(_key))
del _key


class FetchStrategy:
    """Base class implementing the engine-facing strategy protocol."""

    name = "base"
    uses_cache = True

    def __init__(self) -> None:
        self.ctx: RuntimeContext | None = None
        self.stats = StrategyStats()
        # Purpose of each in-flight async request, deciding the cache tier
        # its response enters (T1 certain for lazy fetches, T2 speculative
        # for prefetches).
        self._purpose: dict[DataKey, str] = {}
        # Values staged by prepare_blocking for the duration of one blocking
        # obligation-resolution round (survives cache eviction races and
        # serves cacheless strategies like BL3).
        self._staged: dict[DataKey, Any] = {}
        # Keys whose fetch terminally failed during the current blocking
        # round: _collect must not re-request them (each re-fetch would stall
        # the engine again), and their predicates resolve per failure_mode.
        self._round_failed: set[DataKey] = set()
        self._in_blocking_round = False
        # Last successfully fetched value per key, for stale-cache fallback
        # when a fresh fetch terminally fails (only kept while enabled).
        self._last_known: dict[DataKey, Any] = {}
        self.last_postpone_ell = 0.0

    # -- wiring ----------------------------------------------------------------
    def attach(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        if ctx.metrics is not None:
            # Rebind the (still-empty) stats façade onto the framework's
            # shared registry so snapshots include the fetch.* counters.
            self.stats = StrategyStats(ctx.metrics)

    @property
    def total_stall_time(self) -> float:
        return self.stats.total_stall_time

    # -- pipeline hooks -----------------------------------------------------------
    def on_event_start(self, event: Event, index: int) -> None:
        """Called before the engine processes ``event``."""
        ctx = self.ctx
        ctx.rates.observe_event(event.event_type or "", event.t)
        self._deliver_due()
        self._fire_scheduled()
        if index % ctx.utility_tick_interval == 0:
            self._utility_tick()

    def on_event_end(self, event: Event, matches: list) -> None:
        """Called after the engine processed ``event`` (subclass hook)."""

    def _utility_tick(self) -> None:
        # The engine is attached after construction; runs_per_state is wired
        # by the pipeline through `bind_engine`.
        if self._engine is not None:
            self.ctx.utility.tick(self.ctx.clock.now, self._engine.runs_per_state())

    _engine = None

    def bind_engine(self, engine) -> None:
        """Give the strategy access to live run counts (for #P_j)."""
        self._engine = engine

    # -- engine protocol ------------------------------------------------------------
    def resolve_predicate(
        self, transition: Transition, predicate: Predicate, run: Run | None, env: Mapping[str, Event]
    ):
        """Evaluate a remote predicate, or return POSTPONED (§5.2)."""
        keys = predicate.remote_keys(env)
        self._deliver_due()
        values, missing = self._collect(keys)
        self._record_history(transition, predicate, missing)
        if missing:
            if self.decide_postpone(transition, predicate, run, env, missing):
                self.stats.lazy_postponements += 1
                tracer = self.ctx.tracer
                if tracer.enabled:
                    tracer.emit(
                        CAT_OBLIGATION,
                        "postpone",
                        self.ctx.clock.now,
                        transition=transition.index,
                        run_id=tracer.run_ref(run.run_id) if run is not None else None,
                        keys=[trace_key(key) for key in missing],
                    )
                return POSTPONED
            values.update(self._block_for(missing))
        return _evaluate_with(predicate, env, values, self.ctx.failure_mode)

    def resolve_obligation_predicate(
        self, predicate: Predicate, env: Mapping[str, Event], blocking: bool
    ):
        """Re-evaluate a postponed predicate once its data (maybe) arrived."""
        keys = predicate.remote_keys(env)
        self._deliver_due()
        values, missing = self._collect(keys)
        if missing:
            if not blocking:
                return POSTPONED
            values.update(self._block_for(missing))
        outcome = _evaluate_with(predicate, env, values, self.ctx.failure_mode)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_OBLIGATION,
                "resolve",
                self.ctx.clock.now,
                outcome=bool(outcome),
                blocking=blocking,
            )
        return outcome

    def prepare_blocking(self, run: Run) -> None:
        """Fetch everything a run's obligations still miss, in one round.

        Called by the engine before blocking obligation resolution so the
        stall is the *maximum* outstanding transmission latency rather than
        the sum over predicates — the effect the paper credits for BL3
        beating BL1/BL2 on Q1 (§7.2).
        """
        missing: list[DataKey] = []
        seen: set[DataKey] = set()
        self._deliver_due()
        self._in_blocking_round = True
        for obligation in run.obligations:
            for predicate in obligation.predicates:
                for key in predicate.remote_keys(obligation.env):
                    if key not in seen and not self._available(key):
                        seen.add(key)
                        missing.append(key)
        if missing:
            self._staged.update(self._block_for(missing))

    def finish_blocking(self) -> None:
        """End of a blocking obligation-resolution round: drop staged values."""
        self._staged.clear()
        self._round_failed.clear()
        self._in_blocking_round = False

    def should_block_obligations(self, run: Run) -> bool:
        """Default: obligations ride until the final state resolves them."""
        return False

    def decide_postpone(
        self,
        transition: Transition,
        predicate: Predicate,
        run: Run | None,
        env: Mapping[str, Event],
        missing: list[DataKey],
    ) -> bool:
        """Default: never postpone — block until the data is fetched."""
        return False

    def on_run_created(self, run: Run) -> None:
        self.ctx.utility.on_run_created(run)
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_RUN,
                "create",
                self.ctx.clock.now,
                run_id=tracer.run_ref(run.run_id),
                state=run.state.index,
                bound=len(run.env),
                obligations=len(run.obligations),
            )

    def on_run_dropped(self, run: Run, reason: str) -> None:
        # Obligations that ride a run out of its window (or to end of
        # stream) expire deterministically with the run: the data they
        # waited for never arrived in time to matter.
        tracer = self.ctx.tracer
        if run.obligations and reason in ("expired", "flushed"):
            self.stats.obligations_expired += len(run.obligations)
            if tracer.enabled:
                tracer.emit(
                    CAT_OBLIGATION,
                    "expire",
                    self.ctx.clock.now,
                    run_id=tracer.run_ref(run.run_id),
                    count=len(run.obligations),
                    reason=reason,
                )
        if tracer.enabled:
            tracer.emit(
                CAT_RUN,
                "drop",
                self.ctx.clock.now,
                run_id=tracer.run_ref(run.run_id),
                state=run.state.index,
                reason=reason,
            )
        self.ctx.utility.on_run_dropped(run)

    def observe_guard(self, transition: Transition, passed: bool) -> None:
        self.ctx.rates.observe_guard(transition.index, passed)

    # -- remote access helpers ---------------------------------------------------------
    def _available(self, key: DataKey) -> bool:
        """Availability probe without hit/miss accounting (planner checks)."""
        cache = self.ctx.cache
        return cache is not None and cache.peek(key, self.ctx.clock.now) is not None

    def _collect(self, keys) -> tuple[dict[DataKey, Any], list[DataKey]]:
        """Snapshot the locally available values for ``keys``.

        Snapshotting decouples evaluation from cache state: inserting a
        just-fetched element may evict another key of the *same* predicate,
        so values must be read out before any further insertion.  Each
        lookup counts once in the cache's hit/miss statistics.
        """
        values: dict[DataKey, Any] = {}
        missing: list[DataKey] = []
        cache = self.ctx.cache
        now = self.ctx.clock.now
        for key in keys:
            if key in values:
                continue
            if key in self._staged:
                values[key] = self._staged[key]
                continue
            if key in self._round_failed:
                # Terminally failed this round: neither available nor worth
                # re-requesting — the predicate resolves per failure_mode.
                continue
            element = cache.get(key, now) if cache is not None else None
            if element is None:
                missing.append(key)
            else:
                values[key] = self._value_for(key, element)
        return values, missing

    def _value_for(self, key: DataKey, element) -> Any:
        """The value for ``key`` given a cache hit (possibly on a container)."""
        if element.key == key:
            return element.value
        # Container hit: serve the contained element's own value.
        return self.ctx.transport.store.lookup(key).value

    def _block_for(self, keys: list[DataKey]) -> dict[DataKey, Any]:
        """Fetch ``keys``, stalling the engine until all outcomes are known.

        Requests are issued concurrently (the stall is the max, not the sum
        — this is what makes BL3's one-shot fetching cheaper per match than
        BL1's state-by-state stalls).  Requests already in flight are simply
        awaited for their remaining time; pending requests that are doomed
        to fail are taken over so their retry chain completes within the
        stall.  Returns the fetched values; with a cache attached they are
        also inserted (tier T1 — their use is certain), while BL1 keeps
        nothing beyond the returned snapshot.

        A key whose fetch terminally fails (retries exhausted) is served
        from the stale-value fallback when enabled and known, and is
        otherwise left out of the returned snapshot — the caller's
        ``failure_mode`` then decides the predicate.
        """
        ctx = self.ctx
        now = ctx.clock.now
        latest = now
        requests = []
        owned: list = []  # blocking requests this call issued (to deregister)
        for key in keys:
            pending = ctx.transport.in_flight(key)
            if pending is not None and (pending.ok or pending.final):
                request = pending
            else:
                request = ctx.transport.fetch_blocking(key, now)
                owned.append(request)
            requests.append(request)
            if request.arrives_at > latest:
                latest = request.arrives_at
        self.stats.blocking_stalls += 1
        self.stats.total_stall_time += latest - now
        tracer = ctx.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_FETCH,
                "stall",
                now,
                dur=latest - now,
                keys=[trace_key(key) for key in keys],
            )
        ctx.clock.advance_to(latest)
        values: dict[DataKey, Any] = {}
        cache = ctx.cache
        owned_set = {id(request) for request in owned}
        for request in requests:
            self._purpose.pop(request.key, None)
            if request.ok:
                values[request.key] = request.element.value
                if ctx.stale_serve_enabled:
                    self._last_known[request.key] = request.element.value
                if cache is not None:
                    cache.put(request.element, ctx.clock.now, certain=True)
                continue
            # Terminal failure.  Pending async failures are counted when
            # delivered; only failures of requests we issued count here.
            if id(request) in owned_set:
                self.stats.fetch_failures += 1
            if self._in_blocking_round:
                self._round_failed.add(request.key)
            if ctx.stale_serve_enabled and request.key in self._last_known:
                values[request.key] = self._last_known[request.key]
                self.stats.stale_serves += 1
        for request in owned:
            ctx.transport.complete(request)
        self._deliver_due()
        return values

    def _deliver_due(self) -> None:
        """Move arrived async responses into the cache.

        Failed responses (retries exhausted) deliver nothing: the key simply
        stays absent, which is *not* the same as a successful fetch of the
        ``MISSING_VALUE`` sentinel — a later evaluation either re-fetches or
        resolves per ``failure_mode``.
        """
        ctx = self.ctx
        delivered = ctx.transport.deliver_due(ctx.clock.now)
        if not delivered:
            return
        cache = ctx.cache
        for request in delivered:
            purpose = self._purpose.pop(request.key, _PURPOSE_LAZY)
            if not request.ok:
                self.stats.fetch_failures += 1
                continue
            if ctx.stale_serve_enabled:
                self._last_known[request.key] = request.element.value
            if cache is not None:
                cache.put(request.element, ctx.clock.now, certain=purpose == _PURPOSE_LAZY)

    def _fetch_async(self, key: DataKey, purpose: str) -> None:
        ctx = self.ctx
        if ctx.transport.in_flight(key) is None:
            ctx.transport.fetch_async(key, ctx.clock.now)
            self._purpose[key] = purpose
        elif purpose == _PURPOSE_LAZY:
            # A lazy need upgrades a speculative prefetch: its use is now certain.
            self._purpose[key] = _PURPOSE_LAZY

    def _fetch_async_lazy(self, keys: list[DataKey]) -> None:
        for key in keys:
            self._fetch_async(key, _PURPOSE_LAZY)

    def _fetch_async_prefetch(self, key: DataKey) -> None:
        self._fetch_async(key, _PURPOSE_PREFETCH)

    # -- subclass hooks -------------------------------------------------------------
    def _fire_scheduled(self) -> None:
        """Consume scheduler payloads (offset prefetches); default: none."""
        for _ in self.ctx.scheduler.pop_due(self.ctx.clock.now):
            pass

    def _record_history(
        self, transition: Transition, predicate: Predicate, missing: list[DataKey]
    ) -> None:
        """Prefetch hit/miss history bookkeeping; default: none (no prefetch)."""

    def end_of_stream(self) -> None:
        """Cleanup hook after the last event (subclass extension point)."""
        transport = self.ctx.transport
        self.stats.retries = transport.retries
        if transport.breakers is not None:
            self.stats.breaker_opens = transport.breakers.opens

    def describe(self) -> dict[str, Any]:
        data = {"strategy": self.name}
        data.update(self.stats.as_dict())
        return data

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _evaluate_with(
    predicate: Predicate,
    env: Mapping[str, Event],
    values: dict,
    failure_mode: str | None = None,
) -> bool:
    """Evaluate a predicate against a pre-collected value snapshot.

    A key absent from ``values`` after a blocking round means its fetch
    terminally failed; ``failure_mode`` then decides the predicate
    (fail-open: true, fail-closed: false).  Without a failure mode the
    unavailability propagates — on a healthy network it indicates a bug.
    """

    def resolver(key):
        try:
            return values[key]
        except KeyError:
            raise RemoteDataUnavailable(key) from None

    try:
        return predicate.evaluate(env, resolver)
    except RemoteDataUnavailable:
        if failure_mode == FAIL_OPEN:
            return True
        if failure_mode == FAIL_CLOSED:
            return False
        raise

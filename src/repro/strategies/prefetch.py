"""The PFetch strategy: prefetching remote data based on anticipated use (§5.1).

Two cooperating pieces:

:class:`PrefetchPlanner` answers operation **P1** — *when* to prefetch — per
remote site:

* **Lookahead timing** walks the site's trigger candidates from the class
  closest to the need back towards the class where the lookup key is first
  bound, and picks the closest one whose recent prefetches actually hit
  (cache hit history ``H``, Alg. 3 lines 3–9).  Triggering means: the moment
  a partial match *enters* that class, the concrete key is computed from its
  bound events and a fetch may be issued.
* **Estimated-arrival timing** is the fallback when every candidate has
  accumulated negative evidence: the fetch is delayed by
  ``1/lambda - l_remote`` after the partial match enters the earliest
  key-bearing class, aiming the response to land just before the extension
  event is expected (Alg. 3 lines 10–12, Poisson arrivals).

:class:`PFetchStrategy` answers operation **P2** — *what* to prefetch — with
the utility gate of Eq. 7: an element is fetched only if its utility exceeds
the minimum utility currently represented in the cache (always, while the
cache has free room).  A missing element at evaluation time interrupts
processing exactly like BL2 — the cost of a misprediction the paper's
Fig. 5d tail latencies show.
"""

from __future__ import annotations

from repro.events.event import Event
from repro.nfa.automaton import RemoteSite, Transition
from repro.nfa.run import Run
from repro.query.predicates import Predicate
from repro.obs.trace import CAT_PREFETCH, trace_key
from repro.remote.element import DataKey
from repro.strategies.base import FetchStrategy

__all__ = ["PrefetchPlan", "PrefetchPlanner", "PFetchStrategy"]


class PrefetchPlan:
    """Current prefetch decision for one remote site."""

    __slots__ = ("trigger_state_index", "offset")

    def __init__(self, trigger_state_index: int, offset: float) -> None:
        self.trigger_state_index = trigger_state_index
        self.offset = offset

    def __repr__(self) -> str:
        return f"PrefetchPlan(trigger=q{self.trigger_state_index}, offset={self.offset:.1f}us)"


class PrefetchPlanner:
    """Computes and refreshes prefetch timing plans (P1, Alg. 3)."""

    def __init__(self, strategy: "PFetchStrategy") -> None:
        self._strategy = strategy
        # site_id -> states that trigger it (possibly with offset)
        self._plans: dict[int, PrefetchPlan] = {}
        # trigger state index -> sites fired when a run enters it
        self._triggers: dict[int, list[RemoteSite]] = {}
        self._last_refresh = -1.0

    def refresh(self, now: float, interval: float = 1_000.0) -> None:
        """Recompute all plans if the refresh interval elapsed."""
        if self._last_refresh >= 0 and now - self._last_refresh < interval:
            return
        self._last_refresh = now
        ctx = self._strategy.ctx
        self._plans.clear()
        self._triggers.clear()
        for site in ctx.automaton.sites:
            plan = self._plan_site(site, now)
            if plan is None:
                continue
            self._plans[site.site_id] = plan
            self._triggers.setdefault(plan.trigger_state_index, []).append(site)

    def _plan_site(self, site: RemoteSite, now: float) -> PrefetchPlan | None:
        """Alg. 3 for one site; None when the site is unprefetchable."""
        if not site.prefetchable:
            return None
        ctx = self._strategy.ctx
        if ctx.lookahead_enabled:
            for state in site.lookahead_states:  # closest to the need first
                if state.is_root:
                    continue
                if ctx.history.usable(site.site_id, state.index, now):
                    return PrefetchPlan(state.index, 0.0)
        # Estimated-arrival fallback: anchor at the earliest key-bearing
        # class and delay by the expected wait minus the transmission time.
        anchor = site.lookahead_states[-1]
        if anchor.is_root:
            return None
        expected_wait = ctx.rates.expected_gap(site.transition.index, site.transition.event_type)
        transmission = ctx.transport.monitor.estimate_source(site.source)
        offset = max(0.0, expected_wait - transmission)
        return PrefetchPlan(anchor.index, offset)

    def plan_for(self, site_id: int) -> PrefetchPlan | None:
        return self._plans.get(site_id)

    def trigger_state_for(self, site_id: int) -> int | None:
        """The state whose entry currently triggers this site's prefetches."""
        plan = self._plans.get(site_id)
        return plan.trigger_state_index if plan is not None else None

    def on_run_created(self, run: Run, now: float) -> None:
        """Fire (or schedule) prefetches triggered by the run's new state."""
        sites = self._triggers.get(run.state.index)
        if not sites:
            return
        ctx = self._strategy.ctx
        for site in sites:
            if site.ref.key_binding not in run.env:
                continue  # different branch shares the state index? (defensive)
            key = site.ref.concrete_key(run.env)
            plan = self._plans[site.site_id]
            if plan.offset <= 0.0:
                self._strategy.issue_prefetch(site, key)
            else:
                ctx.scheduler.schedule(now + plan.offset, ("prefetch", site, key))


class PFetchStrategy(FetchStrategy):
    """Prefetching with lookahead / estimated-arrival timing (§5.1)."""

    name = "PFetch"

    def __init__(self) -> None:
        super().__init__()
        self.planner = PrefetchPlanner(self)

    # -- pipeline hooks ---------------------------------------------------------
    def on_event_start(self, event: Event, index: int) -> None:
        super().on_event_start(event, index)
        self.planner.refresh(self.ctx.clock.now)

    def _fire_scheduled(self) -> None:
        """Issue offset-timed prefetches whose due time has come."""
        for payload in self.ctx.scheduler.pop_due(self.ctx.clock.now):
            kind, site, key = payload
            if kind == "prefetch":
                self.issue_prefetch(site, key)

    # -- engine hooks ---------------------------------------------------------------
    def on_run_created(self, run: Run) -> None:
        super().on_run_created(run)
        self.planner.refresh(self.ctx.clock.now)
        self.planner.on_run_created(run, self.ctx.clock.now)

    def _record_history(
        self, transition: Transition, predicate: Predicate, missing: list[DataKey]
    ) -> None:
        """Feed the cache hit/miss history for lookahead timing."""
        ctx = self.ctx
        now = ctx.clock.now
        missing_set = set(missing)
        for site in transition.sites:
            if site.predicate is not predicate or not site.prefetchable:
                continue
            trigger = self.planner.trigger_state_for(site.site_id)
            if trigger is None:
                continue
            hit = not missing_set
            if hit:
                self.stats.history_hits += 1
                ctx.history.record_hit(site.site_id, trigger, now)
            else:
                self.stats.history_misses += 1
                ctx.history.record_miss(site.site_id, trigger, now)

    # -- P2: prefetch selection --------------------------------------------------------
    def issue_prefetch(self, site: RemoteSite, key: DataKey) -> None:
        """Issue one speculative fetch, subject to the Eq. 7 utility gate."""
        ctx = self.ctx
        now = ctx.clock.now
        if ctx.noise.active and ctx.noise.flip(("prefetch", site.site_id, key), now):
            # A phantom partial match was expected: fetch a useless element.
            key = ctx.noise.decoy_key(key)
        tracer = ctx.tracer
        if self._available(key) or ctx.transport.in_flight(key) is not None:
            if tracer.enabled:
                tracer.emit(
                    CAT_PREFETCH,
                    "decision",
                    now,
                    decision="skip_local",
                    gated=False,
                    site=site.site_id,
                    key=trace_key(key),
                )
            return
        if not ctx.transport.source_available(key[0], now):
            # Speculative traffic to a source with an open breaker is pure
            # waste; a later urgent need will probe it via the blocking path.
            self.stats.breaker_skips += 1
            if tracer.enabled:
                tracer.emit(
                    CAT_PREFETCH,
                    "decision",
                    now,
                    decision="breaker_skip",
                    gated=False,
                    site=site.site_id,
                    key=trace_key(key),
                )
            return
        cache = ctx.cache
        if ctx.prefetch_gate_enabled and cache is not None and cache.used >= cache.capacity:
            # Eq. 7: only displace cached data for higher-utility elements.
            # The candidate's own utility includes the anticipated urgent
            # need of the triggering partial match (one latency-weighted use).
            # The decomposition below replicates ``ctx.utility.value`` term by
            # term (same call order, same float ops) so the trace record can
            # carry the Eq. 5/7 inputs without perturbing the computation.
            omega = ctx.omega_fetch
            uu = ctx.utility.urgent_utility(key)
            fu = ctx.utility.future_utility(key)
            candidate = omega * uu + (1.0 - omega) * fu
            ell_estimate = ctx.transport.monitor.estimate(key)
            candidate += omega * ell_estimate
            cache_min = cache.min_utility()
            if candidate <= cache_min:
                self.stats.prefetches_suppressed += 1
                if tracer.enabled:
                    tracer.emit(
                        CAT_PREFETCH,
                        "decision",
                        now,
                        decision="suppressed",
                        gated=True,
                        site=site.site_id,
                        key=trace_key(key),
                        uu=uu,
                        fu=fu,
                        omega=omega,
                        ell_estimate=ell_estimate,
                        candidate_utility=candidate,
                        cache_min=cache_min,
                    )
                return
            self.stats.prefetches_issued += 1
            if tracer.enabled:
                tracer.emit(
                    CAT_PREFETCH,
                    "decision",
                    now,
                    decision="issued",
                    gated=True,
                    site=site.site_id,
                    key=trace_key(key),
                    uu=uu,
                    fu=fu,
                    omega=omega,
                    ell_estimate=ell_estimate,
                    candidate_utility=candidate,
                    cache_min=cache_min,
                )
            # The Eq. 7 candidate utility doubles as the batch-assembly rank.
            self._fetch_async_prefetch(key, utility=candidate)
            return
        self.stats.prefetches_issued += 1
        if tracer.enabled:
            tracer.emit(
                CAT_PREFETCH,
                "decision",
                now,
                decision="issued",
                gated=False,
                site=site.site_id,
                key=trace_key(key),
            )
        self._fetch_async_prefetch(key)

"""Strategy counters: the ``fetch.*`` registry view and its key lists.

Every counter a strategy maintains is declared here, in report order.
:data:`STRATEGY_COUNTER_KEYS` is the single source of truth:
:class:`StrategyStats` registers exactly these cells, ``as_dict()`` reports
them in this order, and the fault table derives its columns from the
degradation subset — a renamed counter breaks a test instead of silently
dropping out of a report.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import MetricsRegistry, ScopedRegistry

__all__ = [
    "StrategyStats",
    "STRATEGY_COUNTER_KEYS",
    "DEGRADATION_COUNTER_KEYS",
    "DropStats",
    "RUN_DROP_REASONS",
]

STRATEGY_COUNTER_KEYS = (
    "blocking_stalls",
    "total_stall_time",
    "prefetches_issued",
    "prefetches_suppressed",
    "lazy_postponements",
    "forced_blocks",
    "history_hits",
    "history_misses",
    "fetch_failures",
    "retries",
    "breaker_opens",
    "breaker_skips",
    "obligations_expired",
    "stale_serves",
)

# The counters that stay zero on a healthy network; faulted runs surface
# them in ``repro.metrics.reporting``'s fault table.
DEGRADATION_COUNTER_KEYS = (
    "fetch_failures",
    "retries",
    "breaker_opens",
    "breaker_skips",
    "obligations_expired",
    "stale_serves",
)


# Every reason the engine passes to ``on_run_dropped``, in report order.
# ``consumed`` is a run retiring into a match; the rest are losses.
RUN_DROP_REASONS = (
    "consumed",
    "expired",
    "obligation_failed",
    "flushed",
    "shed",
)


class DropStats:
    """Per-reason run-drop counters (``engine.dropped.<reason>`` cells).

    Same registry-view pattern as :class:`StrategyStats`: the reason list
    above is the single source of truth, every drop lands on a registered
    cell, and an unknown reason raises instead of vanishing.
    """

    __slots__ = ("_cells",)

    def __init__(self, registry: MetricsRegistry | ScopedRegistry | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {
            reason: registry.counter(f"engine.dropped.{reason}") for reason in RUN_DROP_REASONS
        }

    def record(self, reason: str) -> None:
        cell = self._cells.get(reason)
        if cell is None:
            raise ValueError(f"unregistered run-drop reason {reason!r}; add it to RUN_DROP_REASONS")
        cell.inc()

    def as_dict(self) -> dict[str, int]:
        return {f"dropped.{reason}": self._cells[reason].value for reason in RUN_DROP_REASONS}

    def __getitem__(self, reason: str) -> int:
        return self._cells[reason].value


class StrategyStats:
    """Counters describing one strategy's behaviour during a run.

    A view over a :class:`~repro.obs.registry.MetricsRegistry`: each counter
    attribute reads and writes a registry cell under ``fetch.<name>``, so a
    metrics snapshot and this façade can never disagree.  Standalone
    construction (unit tests, unattached strategies) binds a private
    registry.
    """

    __slots__ = ("_cells", "extra")

    def __init__(self, registry: MetricsRegistry | ScopedRegistry | None = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {key: registry.counter(f"fetch.{key}") for key in STRATEGY_COUNTER_KEYS}
        # Stall time accumulates float microseconds; keep the cell float so
        # reports render `0.0` (not `0`) on stall-free runs.
        cell = self._cells["total_stall_time"]
        cell.value = float(cell.value)
        self.extra: dict[str, Any] = {}

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {}
        for key in STRATEGY_COUNTER_KEYS:
            value = self._cells[key].value
            data[key] = round(value, 3) if key == "total_stall_time" else value
        data.update(self.extra)
        return data


def _counter_property(key: str) -> property:
    def _get(self: StrategyStats):
        return self._cells[key].value

    def _set(self: StrategyStats, value) -> None:
        self._cells[key].value = value

    return property(_get, _set)


for _key in STRATEGY_COUNTER_KEYS:
    setattr(StrategyStats, _key, _counter_property(_key))
del _key

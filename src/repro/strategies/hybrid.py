"""The Hybrid strategy: PFetch + LzEval combined (Alg. 1).

Per the EIRES workflow, prefetching is always performed; whenever a needed
element nevertheless misses the cache (wrong prediction, eviction, or a key
only derivable from the current event), lazy evaluation takes over instead
of interrupting the stream.  The combination overcomes each component's
weakness: PFetch's mispredictions no longer block processing, and LzEval's
partial-match overhead shrinks because most needs are already served from
the cache (§7.2, "Benefits of Hybrid").
"""

from __future__ import annotations

from repro.strategies.lazy import LazyBenefitModel, LzEvalStrategy
from repro.strategies.prefetch import PFetchStrategy

__all__ = ["HybridStrategy"]


class HybridStrategy(PFetchStrategy):
    """Prefetch on anticipation; lazily evaluate whatever still misses."""

    name = "Hybrid"

    def __init__(self) -> None:
        super().__init__()
        self.benefit = LazyBenefitModel(self)

    # LzEval's decision hooks, grafted onto the PFetch base: Python's MRO
    # with two concrete strategies would be ambiguous about stats/planner
    # initialisation, so the two methods are delegated explicitly.
    decide_postpone = LzEvalStrategy.decide_postpone
    should_block_obligations = LzEvalStrategy.should_block_obligations

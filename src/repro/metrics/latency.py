"""Match-latency collection and percentile reporting (§7.1, "Measures").

The paper reports the 5th, 25th, 50th, 75th, and 95th percentiles of the
per-match detection latency — the time between the arrival of the last event
of a match and the match's detection; the SLO plane adds the tail p99 on
top.  :class:`LatencyCollector` accumulates per-match latencies (virtual
microseconds) and computes those percentiles, optionally after exponential
smoothing over a sliding window as the paper's latency definition ``l(k)``
allows.  The reported quantile set is configurable per collector (and from
``EiresConfig.report_percentiles`` at the framework level).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["LatencyCollector", "percentile", "REPORT_PERCENTILES"]

REPORT_PERCENTILES = (5, 25, 50, 75, 95, 99)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted ``sorted_values``.

    Matches ``numpy.percentile``'s default method, without the dependency in
    the hot path.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of no data")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * q / 100.0
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return sorted_values[lower]
    fraction = rank - lower
    lo, hi = sorted_values[lower], sorted_values[upper]
    # lo + f*(hi-lo) rather than lo*(1-f) + hi*f: the latter can round to
    # lo + 1ulp even when lo == hi, breaking monotonicity in q.  Clamping to
    # the bracket keeps rounding from ever leaving [lo, hi].
    return min(max(lo + fraction * (hi - lo), lo), hi)


class LatencyCollector:
    """Accumulates per-match latencies and summarises them.

    ``smoothing_window`` > 1 replaces each sample by the mean of the last
    ``w`` samples before percentile computation, implementing the paper's
    optional smoothing; the default of 1 reports raw per-match latencies.
    ``qs`` sets the default quantile set reported by :meth:`percentiles`.
    """

    def __init__(
        self, smoothing_window: int = 1, qs: Sequence[float] = REPORT_PERCENTILES
    ) -> None:
        if smoothing_window < 1:
            raise ValueError(f"smoothing window must be >= 1: {smoothing_window}")
        for q in qs:
            if not 0 <= q <= 100:
                raise ValueError(f"percentile out of range: {q}")
        self._smoothing_window = smoothing_window
        self._qs = tuple(qs)
        self._samples: list[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"latency cannot be negative: {latency}")
        self._samples.append(latency)

    def record_all(self, latencies: Iterable[float]) -> None:
        for latency in latencies:
            self.record(latency)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def _effective_samples(self) -> list[float]:
        if self._smoothing_window == 1 or len(self._samples) < 2:
            return list(self._samples)
        window = self._smoothing_window
        smoothed = []
        running = 0.0
        for index, value in enumerate(self._samples):
            running += value
            if index >= window:
                running -= self._samples[index - window]
            smoothed.append(running / min(index + 1, window))
        return smoothed

    def percentiles(self, qs: Sequence[float] | None = None) -> dict[float, float]:
        """Percentile summary; empty collectors report all-zero (no matches)."""
        if qs is None:
            qs = self._qs
        values = sorted(self._effective_samples())
        if not values:
            return {q: 0.0 for q in qs}
        return {q: percentile(values, q) for q in qs}

    def median(self) -> float:
        return self.percentiles((50,))[50]

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def __repr__(self) -> str:
        if not self._samples:
            return "LatencyCollector(empty)"
        summary = self.percentiles()
        inner = ", ".join(f"p{int(q)}={v:.1f}" for q, v in summary.items())
        return f"LatencyCollector(n={len(self._samples)}, {inner})"

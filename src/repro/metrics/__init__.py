"""Measurement: latency percentiles, throughput, report tables."""

from repro.metrics.latency import REPORT_PERCENTILES, LatencyCollector, percentile
from repro.metrics.throughput import ThroughputMeter

__all__ = ["LatencyCollector", "percentile", "REPORT_PERCENTILES", "ThroughputMeter"]

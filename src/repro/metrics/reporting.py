"""Plain-text result tables in the shape of the paper's figures.

Each evaluation figure boils down to "latency percentiles (or throughput)
per strategy, per configuration"; :func:`format_table` renders exactly that,
and :func:`format_comparison` adds the paper-style speedup factors
("Hybrid reduces the median latency by N x vs BL1").
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.remote.transport import TRANSPORT_FAULT_COUNTER_KEYS
from repro.strategies.base import DEGRADATION_COUNTER_KEYS

__all__ = [
    "format_table",
    "format_comparison",
    "speedups",
    "format_fault_summary",
    "format_health_report",
    "FAULT_COLUMNS",
]

# Degradation counters surfaced by faulted runs (summary() key names).
# Derived from the single-source-of-truth counter tuples so a renamed
# counter cannot silently drop out of the fault table.
FAULT_COLUMNS = (
    "strategy",
    *(f"fetch.{key}" for key in DEGRADATION_COUNTER_KEYS),
    *(f"transport.{key}" for key in TRANSPORT_FAULT_COUNTER_KEYS),
)


def format_table(
    title: str,
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` (dicts) as an aligned text table with a title rule."""
    header = [str(column) for column in columns]
    rendered: list[list[str]] = [header]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(header))]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    for index, cells in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(cells, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def speedups(
    rows: Sequence[Mapping[str, Any]],
    metric: str,
    subject: str = "Hybrid",
    strategy_key: str = "strategy",
    higher_is_better: bool = False,
) -> dict[str, float]:
    """Improvement factor of ``subject`` over each other strategy.

    For latency-like metrics (default) this is ``baseline / subject``; for
    throughput-like metrics pass ``higher_is_better=True`` to get
    ``subject / baseline``.  Values > 1 always mean the subject wins.  Rows
    missing the metric (or zero-valued denominators) are skipped.
    """
    by_name = {row[strategy_key]: row for row in rows if metric in row}
    if subject not in by_name:
        return {}
    subject_value = by_name[subject][metric]
    factors = {}
    for name, row in by_name.items():
        if name == subject:
            continue
        baseline_value = row[metric]
        if higher_is_better:
            if baseline_value:
                factors[name] = subject_value / baseline_value
        elif subject_value:
            factors[name] = baseline_value / subject_value
    return factors


def format_comparison(
    rows: Sequence[Mapping[str, Any]],
    metric: str = "p50",
    subject: str = "Hybrid",
    higher_is_better: bool = False,
) -> str:
    """One-line summary of subject-vs-baseline improvement factors."""
    factors = speedups(rows, metric, subject=subject, higher_is_better=higher_is_better)
    if not factors:
        return f"(no {metric} comparison available)"
    parts = [f"{name}: {factor:.1f}x" for name, factor in sorted(factors.items())]
    return f"{subject} {metric} improvement - " + ", ".join(parts)


def format_fault_summary(rows: Sequence[Mapping[str, Any]], title: str = "Fault tolerance") -> str:
    """Table of the degradation counters for a faulted comparison run."""
    columns = [
        column
        for column in FAULT_COLUMNS
        if column == "strategy" or any(row.get(column) for row in rows)
    ]
    if columns == ["strategy"]:
        return f"{title}: no faults observed"
    return format_table(title, rows, columns, float_format="{:.0f}")


def format_health_report(
    title: str,
    summary: Mapping[str, Any],
    attribution: Mapping[str, Any],
    slo_status: Mapping[str, Any] | None = None,
    replay: Mapping[str, Any] | None = None,
    series_samples: int | None = None,
) -> str:
    """The ``repro.cli report`` health report, as plain diffable text.

    ``attribution`` is :func:`repro.obs.spans.aggregate_spans` output;
    ``slo_status`` is :meth:`repro.obs.slo.SloPlane.status` output;
    ``replay`` is :func:`repro.obs.provenance.replay_trace` output.  Every
    section degrades gracefully when its input is absent.
    """
    lines = [title, "=" * len(title)]
    headline = [f"matches={summary.get('matches', '?')}"]
    quantile_keys = [key for key in summary if key.startswith("p") and key[1:].isdigit()]
    for key in sorted(quantile_keys, key=lambda name: int(name[1:])):
        headline.append(f"{key}={summary[key]}us")
    if "throughput_eps" in summary:
        headline.append(f"throughput={summary['throughput_eps']} ev/s")
    lines.append("  ".join(headline))
    lines.append("")

    span_rows = [
        {
            "component": name,
            "total_us": data["total"],
            "mean_us": data["mean"],
            "share": data["share"],
        }
        for name, data in attribution.get("components", {}).items()
    ]
    if attribution.get("matches"):
        lines.append(
            format_table(
                f"Latency attribution ({attribution['matches']} matches, "
                f"{attribution['latency_total']:.1f}us total)",
                span_rows,
                ("component", "total_us", "mean_us", "share"),
                float_format="{:.3f}",
            )
        )
    else:
        lines.append("Latency attribution: no matches (no spans to fold)")
    lines.append("")

    if slo_status is not None:
        objectives = slo_status.get("objectives", {})
        if objectives:
            slo_rows = [
                {
                    "objective": name,
                    "target": data["target"],
                    "burn": data["burn"],
                    "status": "OK" if data["ok"] else "BREACH",
                }
                for name, data in objectives.items()
            ]
            lines.append(
                format_table(
                    f"SLO status (worst burn {slo_status['worst_burn']:.3f})",
                    slo_rows,
                    ("objective", "target", "burn", "status"),
                    float_format="{:.3f}",
                )
            )
        else:
            lines.append("SLO status: no objectives declared")
        lines.append("")

    if series_samples is not None:
        lines.append(f"Series: {series_samples} samples")
    if replay is not None:
        lines.append(
            f"Provenance replay: {replay.get('checked_spans', 0)} spans, "
            f"{replay.get('checked_eq7', 0)} Eq.7, {replay.get('checked_eq8', 0)} Eq.8, "
            f"{replay.get('checked_shed', 0)} shed decisions; "
            f"{len(replay.get('problems', ()))} inconsistencies"
        )
    return "\n".join(line for line in lines if line is not None)

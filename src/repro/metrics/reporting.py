"""Plain-text result tables in the shape of the paper's figures.

Each evaluation figure boils down to "latency percentiles (or throughput)
per strategy, per configuration"; :func:`format_table` renders exactly that,
and :func:`format_comparison` adds the paper-style speedup factors
("Hybrid reduces the median latency by N x vs BL1").
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.remote.transport import TRANSPORT_FAULT_COUNTER_KEYS
from repro.strategies.base import DEGRADATION_COUNTER_KEYS

__all__ = [
    "format_table",
    "format_comparison",
    "speedups",
    "format_fault_summary",
    "FAULT_COLUMNS",
]

# Degradation counters surfaced by faulted runs (summary() key names).
# Derived from the single-source-of-truth counter tuples so a renamed
# counter cannot silently drop out of the fault table.
FAULT_COLUMNS = (
    "strategy",
    *(f"fetch.{key}" for key in DEGRADATION_COUNTER_KEYS),
    *(f"transport.{key}" for key in TRANSPORT_FAULT_COUNTER_KEYS),
)


def format_table(
    title: str,
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` (dicts) as an aligned text table with a title rule."""
    header = [str(column) for column in columns]
    rendered: list[list[str]] = [header]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(header))]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    for index, cells in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(cells, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def speedups(
    rows: Sequence[Mapping[str, Any]],
    metric: str,
    subject: str = "Hybrid",
    strategy_key: str = "strategy",
    higher_is_better: bool = False,
) -> dict[str, float]:
    """Improvement factor of ``subject`` over each other strategy.

    For latency-like metrics (default) this is ``baseline / subject``; for
    throughput-like metrics pass ``higher_is_better=True`` to get
    ``subject / baseline``.  Values > 1 always mean the subject wins.  Rows
    missing the metric (or zero-valued denominators) are skipped.
    """
    by_name = {row[strategy_key]: row for row in rows if metric in row}
    if subject not in by_name:
        return {}
    subject_value = by_name[subject][metric]
    factors = {}
    for name, row in by_name.items():
        if name == subject:
            continue
        baseline_value = row[metric]
        if higher_is_better:
            if baseline_value:
                factors[name] = subject_value / baseline_value
        elif subject_value:
            factors[name] = baseline_value / subject_value
    return factors


def format_comparison(
    rows: Sequence[Mapping[str, Any]],
    metric: str = "p50",
    subject: str = "Hybrid",
    higher_is_better: bool = False,
) -> str:
    """One-line summary of subject-vs-baseline improvement factors."""
    factors = speedups(rows, metric, subject=subject, higher_is_better=higher_is_better)
    if not factors:
        return f"(no {metric} comparison available)"
    parts = [f"{name}: {factor:.1f}x" for name, factor in sorted(factors.items())]
    return f"{subject} {metric} improvement - " + ", ".join(parts)


def format_fault_summary(rows: Sequence[Mapping[str, Any]], title: str = "Fault tolerance") -> str:
    """Table of the degradation counters for a faulted comparison run."""
    columns = [
        column
        for column in FAULT_COLUMNS
        if column == "strategy" or any(row.get(column) for row in rows)
    ]
    if columns == ["strategy"]:
        return f"{title}: no faults observed"
    return format_table(title, rows, columns, float_format="{:.0f}")

"""Throughput measurement: events processed per (virtual) second (Fig. 7)."""

from __future__ import annotations

__all__ = ["ThroughputMeter"]

_US_PER_SECOND = 1_000_000.0


class ThroughputMeter:
    """Tracks events processed against elapsed virtual time."""

    def __init__(self) -> None:
        self._events = 0
        self._start: float | None = None
        self._end: float | None = None

    def record_event(self, completed_at: float) -> None:
        """Note that one input event finished processing at ``completed_at``."""
        if self._start is None:
            self._start = completed_at
        self._end = completed_at
        self._events += 1

    @property
    def events(self) -> int:
        return self._events

    @property
    def elapsed_us(self) -> float:
        if self._start is None or self._end is None:
            return 0.0
        return self._end - self._start

    def events_per_second(self) -> float:
        """Virtual-time throughput; 0.0 until two events have been seen."""
        elapsed = self.elapsed_us
        if elapsed <= 0:
            return 0.0
        return (self._events - 1) / elapsed * _US_PER_SECOND

    def __repr__(self) -> str:
        return f"ThroughputMeter({self._events} events, {self.events_per_second():.0f} ev/s)"

"""Per-element transmission-latency and per-source health monitoring.

The paper assumes ``l_remote(d)`` "is monitored per data element" (§2.1) and
both PFetch timing (Alg. 3) and the LzEval benefit estimate (Alg. 4) consume
the monitored value.  :class:`LatencyMonitor` keeps an exponentially weighted
moving average per key, falling back to a per-source average for keys never
fetched before, then to a configurable prior — a fresh system has no
observations yet but still needs a usable estimate.

With faults in play (see :mod:`repro.remote.faults`) latency is not the only
signal worth monitoring: a source that keeps failing should stop receiving
speculative traffic.  :class:`FailureWindow` tracks a sliding window of
recent attempt outcomes per source, :class:`CircuitBreaker` turns that
window into the classic closed / open / half-open state machine, and
:class:`BreakerBoard` keeps one breaker per source for the transport, the
prefetch planner (skip dead sources), and the LzEval gate (inflate latency
estimates by the expected retry overhead).
"""

from __future__ import annotations

from collections import deque

from repro.obs.trace import CAT_FETCH, NULL_TRACER, Tracer
from repro.remote.element import DataKey

__all__ = [
    "LatencyMonitor",
    "FailureWindow",
    "CircuitBreaker",
    "BreakerBoard",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class LatencyMonitor:
    """EWMA latency estimates keyed by element and by source."""

    def __init__(self, alpha: float = 0.2, prior: float = 50.0) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if prior <= 0:
            raise ValueError(f"prior latency must be positive: {prior}")
        self._alpha = alpha
        self._prior = prior
        self._by_key: dict[DataKey, float] = {}
        self._by_source: dict[str, float] = {}
        self.observations = 0

    def record(self, key: DataKey, latency: float) -> None:
        """Fold one observed transmission latency into the estimates."""
        if latency < 0:
            raise ValueError(f"observed latency must be non-negative: {latency}")
        self.observations += 1
        self._by_key[key] = self._blend(self._by_key.get(key), latency)
        self._by_source[key[0]] = self._blend(self._by_source.get(key[0]), latency)

    def estimate(self, key: DataKey) -> float:
        """Best available estimate of ``l_remote`` for ``key``."""
        if key in self._by_key:
            return self._by_key[key]
        return self._by_source.get(key[0], self._prior)

    def estimate_source(self, source: str) -> float:
        """Estimate for an entire source (used before any key is known)."""
        return self._by_source.get(source, self._prior)

    def _blend(self, current: float | None, observation: float) -> float:
        if current is None:
            return observation
        return (1 - self._alpha) * current + self._alpha * observation

    def __repr__(self) -> str:
        return f"LatencyMonitor({self.observations} observations, {len(self._by_key)} keys)"


class FailureWindow:
    """Sliding window over the last ``size`` attempt outcomes of one source."""

    __slots__ = ("_outcomes", "_failures")

    def __init__(self, size: int = 32) -> None:
        if size < 1:
            raise ValueError(f"window size must be >= 1: {size}")
        self._outcomes: deque[bool] = deque(maxlen=size)
        self._failures = 0

    def __len__(self) -> int:
        return len(self._outcomes)

    @property
    def size(self) -> int:
        return self._outcomes.maxlen or 0

    def record(self, ok: bool) -> None:
        if len(self._outcomes) == self._outcomes.maxlen and not self._outcomes[0]:
            self._failures -= 1
        self._outcomes.append(ok)
        if not ok:
            self._failures += 1

    def failure_rate(self) -> float:
        """Fraction of failed attempts in the window (0 while empty)."""
        if not self._outcomes:
            return 0.0
        return self._failures / len(self._outcomes)

    def __repr__(self) -> str:
        return f"FailureWindow({self._failures}/{len(self._outcomes)} failed)"


class CircuitBreaker:
    """Closed / open / half-open breaker over one source's failure window.

    *Closed*: requests flow; once the window holds ``min_samples`` outcomes
    and its failure rate reaches ``failure_threshold``, the breaker opens.
    *Open*: requests fail fast (no wire attempt) for ``cooldown`` virtual us.
    *Half-open*: after the cooldown the next request probes the source; a
    success closes the breaker (and resets the window), a failure re-opens
    it for another cooldown.

    The simulation is single-threaded and attempt outcomes are recorded at
    issue time, so the half-open state needs no concurrent-probe limit: the
    probe's outcome transitions the breaker before the next request asks.
    """

    __slots__ = ("window", "failure_threshold", "min_samples", "cooldown",
                 "_state", "_opened_at", "opens", "tracer", "source")

    def __init__(
        self,
        window_size: int = 32,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        cooldown: float = 2_000.0,
        tracer: Tracer = NULL_TRACER,
        source: str = "",
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(f"failure threshold must be in (0, 1]: {failure_threshold}")
        if min_samples < 1:
            raise ValueError(f"min samples must be >= 1: {min_samples}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive: {cooldown}")
        self.window = FailureWindow(window_size)
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self._state = BREAKER_CLOSED
        self._opened_at = 0.0
        self.opens = 0
        self.tracer = tracer
        self.source = source

    def _trace_transition(self, to_state: str, now: float) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                CAT_FETCH, "breaker_transition", now, source=self.source, to=to_state
            )

    def state(self, now: float) -> str:
        if self._state == BREAKER_OPEN and now - self._opened_at >= self.cooldown:
            return BREAKER_HALF_OPEN
        return self._state

    def allow(self, now: float) -> bool:
        """May a request be issued to this source at ``now``?"""
        state = self.state(now)
        if state == BREAKER_OPEN:
            return False
        if state == BREAKER_HALF_OPEN and self._state != BREAKER_HALF_OPEN:
            self._state = BREAKER_HALF_OPEN
            self._trace_transition(BREAKER_HALF_OPEN, now)
        return True

    def record(self, ok: bool, now: float) -> None:
        """Fold one attempt outcome into the breaker."""
        self.window.record(ok)
        if self._state == BREAKER_HALF_OPEN:
            if ok:
                self._state = BREAKER_CLOSED
                self.window = FailureWindow(self.window.size)
                self.window.record(ok)
                self._trace_transition(BREAKER_CLOSED, now)
            else:
                self._open(now)
            return
        if (
            self._state == BREAKER_CLOSED
            and not ok
            and len(self.window) >= self.min_samples
            and self.window.failure_rate() >= self.failure_threshold
        ):
            self._open(now)

    def _open(self, now: float) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = now
        self.opens += 1
        self._trace_transition(BREAKER_OPEN, now)

    def __repr__(self) -> str:
        return f"CircuitBreaker({self._state}, opens={self.opens})"


class BreakerBoard:
    """One circuit breaker per remote source, created on first contact."""

    __slots__ = ("window_size", "failure_threshold", "min_samples", "cooldown",
                 "tracer", "_breakers")

    def __init__(
        self,
        window_size: int = 32,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        cooldown: float = 2_000.0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.window_size = window_size
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.tracer = tracer
        self._breakers: dict[str, CircuitBreaker] = {}

    def bind_tracer(self, tracer: Tracer) -> None:
        """Attach the trace bus (assembly time; reaches existing breakers)."""
        self.tracer = tracer
        for breaker in self._breakers.values():
            breaker.tracer = tracer

    def breaker(self, source: str) -> CircuitBreaker:
        breaker = self._breakers.get(source)
        if breaker is None:
            breaker = CircuitBreaker(
                self.window_size, self.failure_threshold, self.min_samples, self.cooldown,
                tracer=self.tracer, source=source,
            )
            self._breakers[source] = breaker
        return breaker

    def allow(self, source: str, now: float) -> bool:
        return self.breaker(source).allow(now)

    def available(self, source: str, now: float) -> bool:
        """Pure availability probe (no half-open side effects) for planners."""
        breaker = self._breakers.get(source)
        return breaker is None or breaker.state(now) != BREAKER_OPEN

    def record(self, source: str, ok: bool, now: float) -> None:
        self.breaker(source).record(ok, now)

    def failure_rate(self, source: str) -> float:
        breaker = self._breakers.get(source)
        return breaker.window.failure_rate() if breaker is not None else 0.0

    def state(self, source: str, now: float) -> str:
        breaker = self._breakers.get(source)
        return breaker.state(now) if breaker is not None else BREAKER_CLOSED

    @property
    def opens(self) -> int:
        """Total number of open transitions across all sources."""
        return sum(breaker.opens for breaker in self._breakers.values())

    def __repr__(self) -> str:
        return f"BreakerBoard({len(self._breakers)} sources, opens={self.opens})"

"""Per-element transmission-latency monitoring.

The paper assumes ``l_remote(d)`` "is monitored per data element" (§2.1) and
both PFetch timing (Alg. 3) and the LzEval benefit estimate (Alg. 4) consume
the monitored value.  :class:`LatencyMonitor` keeps an exponentially weighted
moving average per key, falling back to a per-source average for keys never
fetched before, then to a configurable prior — a fresh system has no
observations yet but still needs a usable estimate.
"""

from __future__ import annotations

from repro.remote.element import DataKey

__all__ = ["LatencyMonitor"]


class LatencyMonitor:
    """EWMA latency estimates keyed by element and by source."""

    def __init__(self, alpha: float = 0.2, prior: float = 50.0) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if prior <= 0:
            raise ValueError(f"prior latency must be positive: {prior}")
        self._alpha = alpha
        self._prior = prior
        self._by_key: dict[DataKey, float] = {}
        self._by_source: dict[str, float] = {}
        self.observations = 0

    def record(self, key: DataKey, latency: float) -> None:
        """Fold one observed transmission latency into the estimates."""
        if latency < 0:
            raise ValueError(f"observed latency must be non-negative: {latency}")
        self.observations += 1
        self._by_key[key] = self._blend(self._by_key.get(key), latency)
        self._by_source[key[0]] = self._blend(self._by_source.get(key[0]), latency)

    def estimate(self, key: DataKey) -> float:
        """Best available estimate of ``l_remote`` for ``key``."""
        if key in self._by_key:
            return self._by_key[key]
        return self._by_source.get(key[0], self._prior)

    def estimate_source(self, source: str) -> float:
        """Estimate for an entire source (used before any key is known)."""
        return self._by_source.get(source, self._prior)

    def _blend(self, current: float | None, observation: float) -> float:
        if current is None:
            return observation
        return (1 - self._alpha) * current + self._alpha * observation

    def __repr__(self) -> str:
        return f"LatencyMonitor({self.observations} observations, {len(self._by_key)} keys)"

"""Remote-data substrate: elements, store, transport, latency monitoring."""

from repro.remote.element import DataElement, DataKey
from repro.remote.monitor import LatencyMonitor
from repro.remote.store import MISSING_VALUE, RemoteStore
from repro.remote.transport import (
    FetchRequest,
    FixedLatency,
    LatencyModel,
    PerSourceLatency,
    Transport,
    UniformLatency,
)

__all__ = [
    "DataElement",
    "DataKey",
    "RemoteStore",
    "MISSING_VALUE",
    "LatencyMonitor",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "FetchRequest",
    "Transport",
]

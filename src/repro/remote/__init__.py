"""Remote-data substrate: elements, store, transport, faults, health monitoring."""

from repro.remote.element import DataElement, DataKey
from repro.remote.faults import (
    FAULT_PROFILES,
    CompositeFaults,
    DropFaults,
    ErrorBurstFaults,
    FaultDecision,
    FaultModel,
    LatencySpikeFaults,
    NoFaults,
    PerSourceFaults,
    TransientErrorFaults,
    make_fault_model,
)
from repro.remote.monitor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerBoard,
    CircuitBreaker,
    FailureWindow,
    LatencyMonitor,
)
from repro.remote.retry import RetryPolicy
from repro.remote.store import MISSING_VALUE, RemoteStore
from repro.remote.transport import (
    FetchRequest,
    FixedLatency,
    LatencyModel,
    PerSourceLatency,
    Transport,
    UniformLatency,
)

__all__ = [
    "DataElement",
    "DataKey",
    "RemoteStore",
    "MISSING_VALUE",
    "LatencyMonitor",
    "FailureWindow",
    "CircuitBreaker",
    "BreakerBoard",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "RetryPolicy",
    "FaultModel",
    "FaultDecision",
    "NoFaults",
    "DropFaults",
    "TransientErrorFaults",
    "LatencySpikeFaults",
    "ErrorBurstFaults",
    "PerSourceFaults",
    "CompositeFaults",
    "FAULT_PROFILES",
    "make_fault_model",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "FetchRequest",
    "Transport",
]

"""Remote-data substrate: elements, store, transport, batching, faults, health monitoring."""

from repro.remote.batching import DISABLED_BATCHING, BatchPolicy, BatchStats
from repro.remote.element import DataElement, DataKey
from repro.remote.faults import (
    FAULT_PROFILES,
    CompositeFaults,
    DropFaults,
    ErrorBurstFaults,
    FaultDecision,
    FaultModel,
    LatencySpikeFaults,
    NoFaults,
    PerSourceFaults,
    TransientErrorFaults,
    make_fault_model,
)
from repro.remote.monitor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerBoard,
    CircuitBreaker,
    FailureWindow,
    LatencyMonitor,
)
from repro.remote.retry import RetryPolicy
from repro.remote.store import MISSING_VALUE, RemoteStore
from repro.remote.transport import (
    MODE_ASYNC,
    MODE_BLOCKING,
    FetchRequest,
    FetchTicket,
    FixedLatency,
    LatencyModel,
    PerSourceLatency,
    Transport,
    UniformLatency,
)

__all__ = [
    "DataElement",
    "DataKey",
    "RemoteStore",
    "MISSING_VALUE",
    "LatencyMonitor",
    "FailureWindow",
    "CircuitBreaker",
    "BreakerBoard",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "RetryPolicy",
    "FaultModel",
    "FaultDecision",
    "NoFaults",
    "DropFaults",
    "TransientErrorFaults",
    "LatencySpikeFaults",
    "ErrorBurstFaults",
    "PerSourceFaults",
    "CompositeFaults",
    "FAULT_PROFILES",
    "make_fault_model",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "FetchRequest",
    "FetchTicket",
    "MODE_BLOCKING",
    "MODE_ASYNC",
    "BatchPolicy",
    "BatchStats",
    "DISABLED_BATCHING",
    "Transport",
]

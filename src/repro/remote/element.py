"""Remote data elements and the part-of hierarchy ``rho`` (§2.1).

A data element is a key--value pair (or relational tuple) held by a remote
source.  Keys are ``(source, key)`` pairs: the *source* names the logical
remote table/service a query's ``REMOTE[...]`` reference addresses, and the
*key* is the concrete lookup value taken from an event's payload.

Data models are frequently hierarchical (the fraud scenario's pre-authorized
clients can be fetched per credit card, per user, or per organization), so
elements may declare a *container*: ``rho(child) = parent`` means the child
is contained in the parent.  The size of a container is the sum of the sizes
of its parts; fetching a container makes all of its parts available.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

__all__ = ["DataKey", "DataElement"]

DataKey = tuple[str, Hashable]


class DataElement:
    """A single remote data element.

    ``size`` is the element's own (leaf) size in abstract units; for
    containers, :meth:`total_size` aggregates the parts, matching the
    paper's ``|d| = sum of contained elements``.
    """

    __slots__ = ("key", "value", "own_size", "parent", "children")

    def __init__(
        self,
        key: DataKey,
        value: Any,
        size: int = 1,
        parent: "DataElement | None" = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"element size must be non-negative: {size}")
        self.key = key
        self.value = value
        self.own_size = size
        self.parent = None
        self.children: list[DataElement] = []
        if parent is not None:
            parent.add_child(self)

    @property
    def source(self) -> str:
        return self.key[0]

    def add_child(self, child: "DataElement") -> None:
        """Record that ``child`` is contained in this element (rho(child)=self)."""
        if child.parent is not None:
            raise ValueError(f"element {child.key} already has a container")
        ancestor: DataElement | None = self
        while ancestor is not None:
            if ancestor is child:
                raise ValueError(f"containment cycle through {child.key}")
            ancestor = ancestor.parent
        child.parent = self
        self.children.append(child)

    def ancestors(self) -> Iterator["DataElement"]:
        """Yield this element and every container above it (reflexive rho*)."""
        node: DataElement | None = self
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["DataElement"]:
        """Yield this element and everything contained in it, depth-first."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def total_size(self) -> int:
        """``|d|``: own size plus the sizes of all contained elements."""
        return sum(node.own_size for node in self.descendants())

    def __repr__(self) -> str:
        return f"DataElement(key={self.key!r}, size={self.own_size})"

"""Transmission-latency model, fault injection, and in-flight tracking.

The CEP engine never touches :class:`repro.remote.store.RemoteStore`
directly; every access goes through a :class:`Transport`, which charges the
transmission latency ``l_remote(d)`` of §2.1.  Two access modes exist:

* **blocking fetch** — the naive integration (BL1/BL2) and the "lazy
  evaluation not beneficial" branch of Alg. 4 line 15: the engine stalls
  until the response arrives.
* **asynchronous fetch** — PFetch prefetches and LzEval fetch-and-postpone:
  the request is issued at ``now`` and its response materialises at
  ``now + l_remote(d)``; the pipeline deposits delivered elements into the
  cache.

Concurrent requests for the same key are coalesced — blocking and async
alike: while either kind of request is in flight, a second request for the
same key joins it instead of issuing a duplicate wire request.

Fault tolerance
---------------
An optional :class:`~repro.remote.faults.FaultModel` decides per attempt
whether the fetch succeeds, errors, is dropped, or suffers a latency spike;
an optional :class:`~repro.remote.retry.RetryPolicy` re-issues failed
attempts with exponential backoff through the virtual clock (blocking
fetches extend the stall, async fetches re-enter the in-flight table); and
an optional :class:`~repro.remote.monitor.BreakerBoard` fail-fasts requests
to sources whose recent attempts keep failing.  A request that exhausts its
retries is delivered with ``ok=False`` and ``element=None`` — a *failed*
fetch is deliberately distinguishable from one that succeeded with the
store's ``MISSING_VALUE`` sentinel (an empty answer is an answer; a failure
is not).  All three collaborators are optional; with none attached the
transport behaves (and draws random numbers) exactly as the fault-free
substrate did.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import CAT_FETCH, NULL_TRACER, Tracer, trace_key
from repro.remote.element import DataElement, DataKey
from repro.remote.faults import DROP, ERROR, SLOW, FaultModel
from repro.remote.monitor import BreakerBoard, LatencyMonitor
from repro.remote.retry import RetryPolicy
from repro.remote.store import RemoteStore
from repro.sim.rng import make_rng

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "FetchRequest",
    "Transport",
    "TRANSPORT_COUNTER_KEYS",
    "TRANSPORT_FAULT_COUNTER_KEYS",
    "TRANSPORT_LATENCY_METRIC",
]

# Every counter the transport maintains, in report order; the façade
# attributes below are views over registry cells named ``transport.<key>``.
TRANSPORT_COUNTER_KEYS = (
    "blocking_fetches",
    "async_fetches",
    "coalesced",
    "retries",
    "failed_fetches",
    "breaker_fastfails",
)

# The subset that stays zero on a healthy network; the fault table in
# ``repro.metrics.reporting`` derives its transport columns from this.
TRANSPORT_FAULT_COUNTER_KEYS = ("failed_fetches", "breaker_fastfails")

# The transport's one histogram: sampled transmission latencies over the
# trailing (virtual) second.  Registered here with the counter tables so
# emission sites never spell metric names inline (rule M1).
TRANSPORT_LATENCY_METRIC = "transport.latency_us"


class LatencyModel(ABC):
    """Draws one transmission latency (in virtual us) per fetch."""

    @abstractmethod
    def sample(self, key: DataKey, rng: random.Random) -> float:
        """Latency for fetching ``key``."""


class FixedLatency(LatencyModel):
    """Every fetch takes exactly ``latency`` microseconds."""

    def __init__(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative: {latency}")
        self.latency = latency

    def sample(self, key: DataKey, rng: random.Random) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]`` — the paper's synthetic setting."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, key: DataKey, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class PerSourceLatency(LatencyModel):
    """Different latency model per remote source, with an optional default."""

    def __init__(
        self,
        models: dict[str, LatencyModel],
        default: LatencyModel | None = None,
    ) -> None:
        self._models = dict(models)
        self._default = default

    def sample(self, key: DataKey, rng: random.Random) -> float:
        model = self._models.get(key[0], self._default)
        if model is None:
            raise KeyError(f"no latency model for source {key[0]!r}")
        return model.sample(key, rng)


class FetchRequest:
    """One outstanding (or completed) remote fetch attempt.

    ``ok`` distinguishes a successful response from a failed one; a failed
    request carries ``element=None`` and an ``error`` tag (``"error"``,
    ``"timeout"``, or ``"breaker_open"``) and its ``arrives_at`` is the time
    the *failure becomes known* (the error round trip, or the attempt
    timeout for drops).  ``attempt`` counts from 1; ``first_issued_at``
    anchors the per-fetch retry deadline.  ``final`` marks a request whose
    retry budget is spent — it will be delivered as-is.
    """

    __slots__ = ("key", "issued_at", "arrives_at", "element", "ok", "error",
                 "attempt", "first_issued_at", "final")

    def __init__(
        self,
        key: DataKey,
        issued_at: float,
        arrives_at: float,
        element: DataElement | None,
        ok: bool = True,
        error: str | None = None,
        attempt: int = 1,
        first_issued_at: float | None = None,
        final: bool = True,
    ) -> None:
        self.key = key
        self.issued_at = issued_at
        self.arrives_at = arrives_at
        self.element = element
        self.ok = ok
        self.error = error
        self.attempt = attempt
        self.first_issued_at = issued_at if first_issued_at is None else first_issued_at
        self.final = final

    @property
    def latency(self) -> float:
        return self.arrives_at - self.issued_at

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"failed:{self.error}"
        return (
            f"FetchRequest({self.key!r}, issued={self.issued_at:.1f}, "
            f"arrives={self.arrives_at:.1f}, {status}, attempt={self.attempt})"
        )


class Transport:
    """Mediates all remote access, charging transmission latency.

    Statistics (``blocking_fetches``, ``async_fetches``, ``coalesced``,
    ``retries``, ``failed_fetches``, ``breaker_fastfails``) feed the
    experiment reports.
    """

    def __init__(
        self,
        store: RemoteStore,
        latency_model: LatencyModel,
        rng: random.Random,
        monitor: LatencyMonitor | None = None,
        fault_model: FaultModel | None = None,
        fault_rng: random.Random | None = None,
        retry_policy: RetryPolicy | None = None,
        breakers: BreakerBoard | None = None,
    ) -> None:
        self._store = store
        self._latency_model = latency_model
        self._rng = rng
        self.monitor = monitor if monitor is not None else LatencyMonitor()
        self._fault_model = fault_model
        # The fault stream is separate from the latency stream so that a
        # fault-free run draws exactly the latencies it always did.
        self._fault_rng = fault_rng if fault_rng is not None else make_rng(0x0FA117)
        self._retry = retry_policy
        self.breakers = breakers
        self._in_flight: dict[DataKey, FetchRequest] = {}
        self.tracer: Tracer = NULL_TRACER
        self._latency_hist: Histogram | None = None
        self._bind_counters(None)

    def _bind_counters(self, registry: MetricsRegistry | None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {
            key: registry.counter(f"transport.{key}") for key in TRANSPORT_COUNTER_KEYS
        }

    def bind_observability(self, registry: MetricsRegistry | None, tracer: Tracer) -> None:
        """Rebind the (still-zero) counters and trace bus at assembly time."""
        if registry is not None:
            self._bind_counters(registry)
            self._latency_hist = registry.histogram(TRANSPORT_LATENCY_METRIC, window=1_000_000.0)
        self.tracer = tracer

    @property
    def store(self) -> RemoteStore:
        return self._store

    @property
    def retry_policy(self) -> RetryPolicy | None:
        return self._retry

    def fetch_blocking(self, key: DataKey, now: float) -> FetchRequest:
        """Fetch ``key`` synchronously; the caller must stall to ``arrives_at``.

        If the same key is already in flight (e.g. a prefetch raced ahead),
        the pending request is joined so the caller only waits for the
        *remaining* time — issuing a second wire request would be wasteful
        and would overstate the stall.  A pending request that is doomed to
        fail is taken over: the blocking caller continues its retry chain
        synchronously, so the returned request always reflects the final
        outcome.  The request is registered in flight for the duration of
        the stall so that an async fetch issued at the same virtual instant
        coalesces with it (the symmetric twin of the async-first case); the
        caller deregisters it via :meth:`complete` once consumed.
        """
        pending = self._in_flight.get(key)
        if pending is not None:
            self.coalesced += 1
            if pending.ok or pending.final:
                return pending
            request = self._retry_to_completion(pending, count_failure=True)
            self._in_flight[key] = request
            return request
        self.blocking_fetches += 1
        request = self._retry_to_completion(self._issue(key, now), count_failure=True)
        self._in_flight[key] = request
        return request

    def fetch_async(self, key: DataKey, now: float) -> FetchRequest:
        """Issue a non-blocking fetch; response is due at ``arrives_at``."""
        pending = self._in_flight.get(key)
        if pending is not None:
            self.coalesced += 1
            return pending
        self.async_fetches += 1
        request = self._issue(key, now)
        self._in_flight[key] = request
        return request

    def in_flight(self, key: DataKey) -> FetchRequest | None:
        """The pending request for ``key``, if any."""
        return self._in_flight.get(key)

    def complete(self, request: FetchRequest) -> None:
        """Deregister a blocking request its caller has consumed."""
        if self._in_flight.get(request.key) is request:
            del self._in_flight[request.key]

    def deliver_due(self, now: float) -> list[FetchRequest]:
        """Pop and return every async request whose outcome is known by ``now``.

        Failed attempts with retry budget left are re-issued (after backoff)
        instead of delivered; only successes and terminal failures come out.
        Delivery order is deterministic: ``(arrives_at, issued_at, key)`` —
        plain arrival order would leave ties at the mercy of dict insertion
        order, which retry rescheduling perturbs.
        """
        delivered: list[FetchRequest] = []
        for key in list(self._in_flight):
            request = self._in_flight[key]
            while request.arrives_at <= now:
                if request.ok or request.final:
                    delivered.append(request)
                    del self._in_flight[key]
                    break
                next_request = self._reissue(request)
                if next_request is None:
                    self.failed_fetches += 1
                    request.final = True
                    delivered.append(request)
                    del self._in_flight[key]
                    break
                request = next_request
                self._in_flight[key] = request
        delivered.sort(key=lambda req: (req.arrives_at, req.issued_at, repr(req.key)))
        if self.tracer.enabled:
            for request in delivered:
                self._trace_complete(request)
        return delivered

    def _trace_complete(self, request: FetchRequest) -> None:
        self.tracer.emit(  # eires: allow[M2] sole caller guards on tracer.enabled

            CAT_FETCH,
            "complete",
            request.first_issued_at,
            dur=request.arrives_at - request.first_issued_at,
            key=trace_key(request.key),
            ok=request.ok,
            error=request.error,
            attempts=request.attempt,
        )

    def pending_count(self) -> int:
        return len(self._in_flight)

    # -- health-aware estimates ------------------------------------------------
    def source_available(self, source: str, now: float) -> bool:
        """Is the source worth speculative traffic (breaker not open)?"""
        return self.breakers is None or self.breakers.available(source, now)

    def effective_estimate(self, key: DataKey) -> float:
        """``l_remote`` estimate including expected retry overhead.

        With a healthy source (or no fault machinery) this equals the plain
        monitor estimate, so fault-free planning decisions are unchanged.
        """
        estimate = self.monitor.estimate(key)
        if self._retry is None or self.breakers is None:
            return estimate
        failure_rate = self.breakers.failure_rate(key[0])
        if failure_rate <= 0.0:
            return estimate
        return estimate + self._retry.expected_overhead(failure_rate, estimate)

    # -- issue / retry internals ----------------------------------------------
    def _retry_to_completion(self, request: FetchRequest, count_failure: bool) -> FetchRequest:
        """Drive a request's retry chain synchronously to its final outcome."""
        while not request.ok:
            next_request = self._reissue(request)
            if next_request is None:
                if count_failure:
                    self.failed_fetches += 1
                break
            request = next_request
        request.final = True
        if self.tracer.enabled:
            self._trace_complete(request)
        return request

    def _reissue(self, request: FetchRequest) -> FetchRequest | None:
        """The follow-up attempt for a failed request, or None if spent."""
        if self._retry is None or request.error == "breaker_open":
            return None
        next_attempt = request.attempt + 1
        if not self._retry.allows(next_attempt, request.arrives_at - request.first_issued_at):
            return None
        self.retries += 1
        reissue_at = request.arrives_at + self._retry.backoff(request.attempt, self._rng)
        if self.tracer.enabled:
            self.tracer.emit(
                CAT_FETCH,
                "retry",
                request.arrives_at,
                key=trace_key(request.key),
                attempt=next_attempt,
                error=request.error,
                reissue_at=reissue_at,
            )
        return self._issue(
            request.key, reissue_at, attempt=next_attempt,
            first_issued_at=request.first_issued_at,
        )

    def _issue(
        self,
        key: DataKey,
        now: float,
        attempt: int = 1,
        first_issued_at: float | None = None,
    ) -> FetchRequest:
        first = now if first_issued_at is None else first_issued_at
        tracer = self.tracer
        if self.breakers is not None and not self.breakers.allow(key[0], now):
            # Fail fast without a wire attempt: no latency draw, no fault
            # draw, and no window sample (the breaker re-probes by time).
            self.breaker_fastfails += 1
            if tracer.enabled:
                tracer.emit(
                    CAT_FETCH, "breaker_fastfail", now, key=trace_key(key), attempt=attempt
                )
            return FetchRequest(
                key, issued_at=now, arrives_at=now, element=None, ok=False,
                error="breaker_open", attempt=attempt, first_issued_at=first, final=False,
            )
        if tracer.enabled:
            tracer.emit(CAT_FETCH, "issue", now, key=trace_key(key), attempt=attempt)
        latency = self._latency_model.sample(key, self._rng)
        decision = None
        if self._fault_model is not None:
            decision = self._fault_model.decide(key, now, attempt, self._fault_rng)
        if decision is None or decision.kind not in (ERROR, DROP):
            if decision is not None and decision.kind == SLOW:
                latency *= decision.latency_scale
            element = self._store.lookup(key)
            request = FetchRequest(
                key, issued_at=now, arrives_at=now + latency, element=element,
                attempt=attempt, first_issued_at=first, final=False,
            )
            self.monitor.record(key, latency)
            if self._latency_hist is not None:
                self._latency_hist.observe(latency, now)
            if self.breakers is not None:
                self.breakers.record(key[0], True, now)
            return request
        if decision.kind == ERROR:
            # A fast error response: the failure is known after the round trip.
            known_after = latency
            error = "error"
        else:
            # A silent drop: the failure is only known at the attempt timeout.
            known_after = self._retry.attempt_timeout if self._retry is not None else latency
            error = "timeout"
        if self.breakers is not None:
            self.breakers.record(key[0], False, now)
        return FetchRequest(
            key, issued_at=now, arrives_at=now + known_after, element=None, ok=False,
            error=error, attempt=attempt, first_issued_at=first, final=False,
        )

    def __repr__(self) -> str:
        return (
            f"Transport(blocking={self.blocking_fetches}, async={self.async_fetches}, "
            f"coalesced={self.coalesced}, retries={self.retries}, "
            f"failed={self.failed_fetches}, pending={len(self._in_flight)})"
        )


def _counter_property(key: str) -> property:
    def _get(self: Transport):
        return self._cells[key].value

    def _set(self: Transport, value) -> None:
        self._cells[key].value = value

    return property(_get, _set)


for _key in TRANSPORT_COUNTER_KEYS:
    setattr(Transport, _key, _counter_property(_key))
del _key

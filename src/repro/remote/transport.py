"""Transmission-latency model and in-flight request tracking.

The CEP engine never touches :class:`repro.remote.store.RemoteStore`
directly; every access goes through a :class:`Transport`, which charges the
transmission latency ``l_remote(d)`` of §2.1.  Two access modes exist:

* **blocking fetch** — the naive integration (BL1/BL2) and the "lazy
  evaluation not beneficial" branch of Alg. 4 line 15: the engine stalls
  until the response arrives.
* **asynchronous fetch** — PFetch prefetches and LzEval fetch-and-postpone:
  the request is issued at ``now`` and its response materialises at
  ``now + l_remote(d)``; the pipeline deposits delivered elements into the
  cache.

Concurrent requests for the same key are coalesced: a second ``fetch_async``
while the first is in flight returns the existing request, like a request
de-duplicating client library would.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.remote.element import DataElement, DataKey
from repro.remote.monitor import LatencyMonitor
from repro.remote.store import RemoteStore

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "FetchRequest",
    "Transport",
]


class LatencyModel(ABC):
    """Draws one transmission latency (in virtual us) per fetch."""

    @abstractmethod
    def sample(self, key: DataKey, rng: random.Random) -> float:
        """Latency for fetching ``key``."""


class FixedLatency(LatencyModel):
    """Every fetch takes exactly ``latency`` microseconds."""

    def __init__(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative: {latency}")
        self.latency = latency

    def sample(self, key: DataKey, rng: random.Random) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]`` — the paper's synthetic setting."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, key: DataKey, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class PerSourceLatency(LatencyModel):
    """Different latency model per remote source, with an optional default."""

    def __init__(
        self,
        models: dict[str, LatencyModel],
        default: LatencyModel | None = None,
    ) -> None:
        self._models = dict(models)
        self._default = default

    def sample(self, key: DataKey, rng: random.Random) -> float:
        model = self._models.get(key[0], self._default)
        if model is None:
            raise KeyError(f"no latency model for source {key[0]!r}")
        return model.sample(key, rng)


class FetchRequest:
    """One outstanding (or completed) remote fetch."""

    __slots__ = ("key", "issued_at", "arrives_at", "element")

    def __init__(self, key: DataKey, issued_at: float, arrives_at: float, element: DataElement):
        self.key = key
        self.issued_at = issued_at
        self.arrives_at = arrives_at
        self.element = element

    @property
    def latency(self) -> float:
        return self.arrives_at - self.issued_at

    def __repr__(self) -> str:
        return (
            f"FetchRequest({self.key!r}, issued={self.issued_at:.1f}, "
            f"arrives={self.arrives_at:.1f})"
        )


class Transport:
    """Mediates all remote access, charging transmission latency.

    Statistics (``blocking_fetches``, ``async_fetches``, ``coalesced``) feed
    the experiment reports.
    """

    def __init__(
        self,
        store: RemoteStore,
        latency_model: LatencyModel,
        rng: random.Random,
        monitor: LatencyMonitor | None = None,
    ) -> None:
        self._store = store
        self._latency_model = latency_model
        self._rng = rng
        self.monitor = monitor if monitor is not None else LatencyMonitor()
        self._in_flight: dict[DataKey, FetchRequest] = {}
        self.blocking_fetches = 0
        self.async_fetches = 0
        self.coalesced = 0

    @property
    def store(self) -> RemoteStore:
        return self._store

    def fetch_blocking(self, key: DataKey, now: float) -> FetchRequest:
        """Fetch ``key`` synchronously; the caller must stall to ``arrives_at``.

        If the same key is already in flight (e.g. a prefetch raced ahead),
        the pending request is returned so the caller only waits for the
        *remaining* time — issuing a second wire request would be wasteful
        and would overstate the stall.
        """
        pending = self._in_flight.get(key)
        if pending is not None:
            self.coalesced += 1
            return pending
        self.blocking_fetches += 1
        return self._issue(key, now)

    def fetch_async(self, key: DataKey, now: float) -> FetchRequest:
        """Issue a non-blocking fetch; response is due at ``arrives_at``."""
        pending = self._in_flight.get(key)
        if pending is not None:
            self.coalesced += 1
            return pending
        self.async_fetches += 1
        request = self._issue(key, now)
        self._in_flight[key] = request
        return request

    def in_flight(self, key: DataKey) -> FetchRequest | None:
        """The pending request for ``key``, if any."""
        return self._in_flight.get(key)

    def deliver_due(self, now: float) -> list[FetchRequest]:
        """Pop and return every async request whose response has arrived."""
        delivered = [req for req in self._in_flight.values() if req.arrives_at <= now]
        for request in delivered:
            del self._in_flight[request.key]
        delivered.sort(key=lambda req: req.arrives_at)
        return delivered

    def pending_count(self) -> int:
        return len(self._in_flight)

    def _issue(self, key: DataKey, now: float) -> FetchRequest:
        latency = self._latency_model.sample(key, self._rng)
        element = self._store.lookup(key)
        request = FetchRequest(key, issued_at=now, arrives_at=now + latency, element=element)
        self.monitor.record(key, latency)
        return request

    def __repr__(self) -> str:
        return (
            f"Transport(blocking={self.blocking_fetches}, async={self.async_fetches}, "
            f"coalesced={self.coalesced}, pending={len(self._in_flight)})"
        )

"""Transmission-latency model, batching, fault injection, and in-flight tracking.

The CEP engine never touches :class:`repro.remote.store.RemoteStore`
directly; every access goes through a :class:`Transport`, which charges the
transmission latency ``l_remote(d)`` of §2.1.  All access flows through one
unified surface — :meth:`Transport.submit` takes a :class:`FetchRequest`
(what the caller wants: key, mode, utility hint) and returns a
:class:`FetchTicket` (the outstanding or completed fetch).  Two modes exist:

* **blocking** — the naive integration (BL1/BL2) and the "lazy evaluation
  not beneficial" branch of Alg. 4 line 15: the engine stalls until the
  response arrives.
* **async** — PFetch prefetches and LzEval fetch-and-postpone: the request
  is issued at ``now`` and its response materialises later; the pipeline
  deposits delivered elements into the cache.

The legacy entry points ``fetch_blocking`` and ``fetch_async`` are gone:
``submit`` is the only way in, and analysis rule A4 fails the build if
either symbol is defined or called anywhere in the tree.

Concurrent requests for the same key are coalesced — blocking and async
alike: while either kind of request is in flight (or queued in an open
batch window), a second request for the same key joins it instead of
issuing a duplicate wire request.

Batching
--------
With a :class:`~repro.remote.batching.BatchPolicy` enabled, async requests
queue per source in a coalescing window and drain into one multi-key wire
request costing the amortized ``l_batch = l_fixed + n * l_per`` instead of
n full round trips (see :mod:`repro.remote.batching`).  A blocking request
for a queued key closes that source's window immediately — the urgent need
pays the wire request now.  A failed batch *splits*: every key re-enters
the normal per-key retry machinery, so one poisoned key cannot terminally
fail its cohort; circuit breakers observe one outcome per wire request.
With the default disabled policy every request takes the classic
single-key path and draws exactly the RNG stream it always did.

Fault tolerance
---------------
An optional :class:`~repro.remote.faults.FaultModel` decides per attempt
whether the fetch succeeds, errors, is dropped, or suffers a latency spike;
an optional :class:`~repro.remote.retry.RetryPolicy` re-issues failed
attempts with exponential backoff through the virtual clock (blocking
fetches extend the stall, async fetches re-enter the in-flight table); and
an optional :class:`~repro.remote.monitor.BreakerBoard` fail-fasts requests
to sources whose recent attempts keep failing.  A request that exhausts its
retries is delivered with ``ok=False`` and ``element=None`` — a *failed*
fetch is deliberately distinguishable from one that succeeded with the
store's ``MISSING_VALUE`` sentinel (an empty answer is an answer; a failure
is not).  All three collaborators are optional; with none attached the
transport behaves (and draws random numbers) exactly as the fault-free
substrate did.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.trace import CAT_FETCH, NULL_TRACER, Tracer, trace_key
from repro.remote.batching import DISABLED_BATCHING, BatchPolicy, BatchQueue, BatchStats
from repro.remote.element import DataElement, DataKey
from repro.remote.faults import DROP, ERROR, SLOW, FaultModel
from repro.remote.monitor import BreakerBoard, LatencyMonitor
from repro.remote.retry import RetryPolicy
from repro.remote.store import RemoteStore
from repro.sim.rng import make_rng

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "PerSourceLatency",
    "FetchRequest",
    "FetchTicket",
    "Transport",
    "MODE_BLOCKING",
    "MODE_ASYNC",
    "TRANSPORT_COUNTER_KEYS",
    "TRANSPORT_FAULT_COUNTER_KEYS",
    "TRANSPORT_LATENCY_METRIC",
    "TRANSPORT_BATCH_KEYS_METRIC",
]

# Access modes of a FetchRequest: blocking stalls the engine until the
# outcome is known; async is issued now and delivered via deliver_due.
MODE_BLOCKING = "blocking"
MODE_ASYNC = "async"

# Every counter the transport maintains, in report order; the façade
# attributes below are views over registry cells named ``transport.<key>``.
TRANSPORT_COUNTER_KEYS = (
    "blocking_fetches",
    "async_fetches",
    "coalesced",
    "retries",
    "failed_fetches",
    "breaker_fastfails",
    "wire_requests",
    "batches",
    "batched_keys",
    "batch_splits",
)

# The subset that stays zero on a healthy network; the fault table in
# ``repro.metrics.reporting`` derives its transport columns from this.
TRANSPORT_FAULT_COUNTER_KEYS = ("failed_fetches", "breaker_fastfails")

# The transport's latency histogram: sampled transmission latencies over the
# trailing (virtual) second.  Registered here with the counter tables so
# emission sites never spell metric names inline (rule M1).
TRANSPORT_LATENCY_METRIC = "transport.latency_us"

# Batch-size histogram: keys per wire request over the trailing second.
TRANSPORT_BATCH_KEYS_METRIC = "transport.batch_keys_per_wire"

# Arrival time of a ticket still waiting in an open batch window: never, until
# the window closes and the wire request assigns the real arrival.
_QUEUED_ARRIVAL = float("inf")


class LatencyModel(ABC):
    """Draws one transmission latency (in virtual us) per fetch."""

    @abstractmethod
    def sample(self, key: DataKey, rng: random.Random) -> float:
        """Latency for fetching ``key``."""


class FixedLatency(LatencyModel):
    """Every fetch takes exactly ``latency`` microseconds."""

    def __init__(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative: {latency}")
        self.latency = latency

    def sample(self, key: DataKey, rng: random.Random) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]`` — the paper's synthetic setting."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"invalid latency range: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, key: DataKey, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class PerSourceLatency(LatencyModel):
    """Different latency model per remote source, with an optional default."""

    def __init__(
        self,
        models: dict[str, LatencyModel],
        default: LatencyModel | None = None,
    ) -> None:
        self._models = dict(models)
        self._default = default

    def sample(self, key: DataKey, rng: random.Random) -> float:
        model = self._models.get(key[0], self._default)
        if model is None:
            raise KeyError(f"no latency model for source {key[0]!r}")
        return model.sample(key, rng)


@dataclass(frozen=True)
class FetchRequest:
    """One remote-access intent, submitted via :meth:`Transport.submit`.

    ``at`` is the (virtual) submission time; ``mode`` selects blocking or
    async delivery.  ``utility`` is the caller's ranking hint for batch
    assembly — Eq. 7 candidate utility for gated prefetches, ``inf`` for
    certain-use lazy fetches, 0 when unknown.  ``batchable=False`` opts an
    async request out of the coalescing window (blocking requests are never
    batched: they close open windows instead).
    """

    key: DataKey
    at: float
    mode: str = MODE_ASYNC
    utility: float = 0.0
    batchable: bool = True

    def __post_init__(self) -> None:
        if self.mode not in (MODE_BLOCKING, MODE_ASYNC):
            raise ValueError(f"unknown fetch mode {self.mode!r}")


class FetchTicket:
    """One outstanding (or completed) remote fetch.

    ``ok`` distinguishes a successful response from a failed one; a failed
    ticket carries ``element=None`` and an ``error`` tag (``"error"``,
    ``"timeout"``, or ``"breaker_open"``) and its ``arrives_at`` is the time
    the *failure becomes known* (the error round trip, or the attempt
    timeout for drops).  ``attempt`` counts from 1; ``first_issued_at``
    anchors the per-fetch retry deadline.  ``final`` marks a ticket whose
    retry budget is spent — it will be delivered as-is.  ``queued`` marks a
    ticket still waiting in an open batch window (its ``arrives_at`` is
    infinite until the window closes).
    """

    __slots__ = ("key", "issued_at", "arrives_at", "element", "ok", "error",
                 "attempt", "first_issued_at", "final", "queued", "wire_started_at")

    def __init__(
        self,
        key: DataKey,
        issued_at: float,
        arrives_at: float,
        element: DataElement | None,
        ok: bool = True,
        error: str | None = None,
        attempt: int = 1,
        first_issued_at: float | None = None,
        final: bool = True,
    ) -> None:
        self.key = key
        self.issued_at = issued_at
        self.arrives_at = arrives_at
        self.element = element
        self.ok = ok
        self.error = error
        self.attempt = attempt
        self.first_issued_at = issued_at if first_issued_at is None else first_issued_at
        self.final = final
        self.queued = False
        # When the final attempt's wire transmission began: ``issued_at``
        # for single-key requests, the window-flush time for batched keys
        # (they sit queued between issue and flush).  Latency-attribution
        # spans split a blocking stall into batch_wait/wire on this.
        self.wire_started_at = issued_at

    @property
    def latency(self) -> float:
        return self.arrives_at - self.issued_at

    def __repr__(self) -> str:
        if self.queued:
            status = "queued"
        elif self.ok:
            status = "ok"
        else:
            status = f"failed:{self.error}"
        return (
            f"FetchTicket({self.key!r}, issued={self.issued_at:.1f}, "
            f"arrives={self.arrives_at:.1f}, {status}, attempt={self.attempt})"
        )


class Transport:
    """Mediates all remote access, charging transmission latency.

    Statistics (``blocking_fetches``, ``async_fetches``, ``coalesced``,
    ``retries``, ``failed_fetches``, ``breaker_fastfails``,
    ``wire_requests``, ``batches``, ``batched_keys``, ``batch_splits``)
    feed the experiment reports.
    """

    def __init__(
        self,
        store: RemoteStore,
        latency_model: LatencyModel,
        rng: random.Random,
        monitor: LatencyMonitor | None = None,
        fault_model: FaultModel | None = None,
        fault_rng: random.Random | None = None,
        retry_policy: RetryPolicy | None = None,
        breakers: BreakerBoard | None = None,
        batch_policy: BatchPolicy | None = None,
    ) -> None:
        self._store = store
        self._latency_model = latency_model
        self._rng = rng
        self.monitor = monitor if monitor is not None else LatencyMonitor()
        self._fault_model = fault_model
        # The fault stream is separate from the latency stream so that a
        # fault-free run draws exactly the latencies it always did.
        self._fault_rng = fault_rng if fault_rng is not None else make_rng(0x0FA117)
        self._retry = retry_policy
        self.breakers = breakers
        self.batch_policy = batch_policy if batch_policy is not None else DISABLED_BATCHING
        self._in_flight: dict[DataKey, FetchTicket] = {}
        self._queues: dict[str, BatchQueue] = {}
        self.tracer: Tracer = NULL_TRACER
        self._latency_hist: Histogram | None = None
        self._batch_hist: Histogram | None = None
        # Consumer refcount: every runtime assembled on this transport
        # attaches itself, so a *shared* transport (the fleet's remote-data
        # plane spans several shards) can refuse an observability rebind
        # that would silently split its counters across registries.
        self._consumers = 0
        self._bound_registry: MetricsRegistry | None = None
        self._bind_counters(None)

    def _bind_counters(self, registry: MetricsRegistry | None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._cells = {
            key: registry.counter(f"transport.{key}") for key in TRANSPORT_COUNTER_KEYS
        }

    def attach_consumer(self) -> int:
        """Register one more runtime sharing this transport; returns the count."""
        self._consumers += 1
        return self._consumers

    @property
    def consumers(self) -> int:
        """How many runtimes share this transport (0 before assembly)."""
        return self._consumers

    def bind_observability(self, registry: MetricsRegistry | None, tracer: Tracer) -> None:
        """Rebind the (still-zero) counters and trace bus at assembly time.

        A transport shared by several runtimes (``consumers > 1``) must keep
        all its counters in one registry — rebinding to a *different* one
        would zero the live cells mid-deployment, so that raises instead.
        """
        if registry is not None:
            if (
                self._consumers > 1
                and self._bound_registry is not None
                and registry is not self._bound_registry
            ):
                raise RuntimeError(
                    "transport is shared by "
                    f"{self._consumers} runtimes; rebinding its counters to a "
                    "different metrics registry would corrupt the shared plane"
                )
            self._bind_counters(registry)
            self._bound_registry = registry
            self._latency_hist = registry.histogram(TRANSPORT_LATENCY_METRIC, window=1_000_000.0)
            self._batch_hist = registry.histogram(TRANSPORT_BATCH_KEYS_METRIC, window=1_000_000.0)
        self.tracer = tracer

    @property
    def store(self) -> RemoteStore:
        return self._store

    @property
    def retry_policy(self) -> RetryPolicy | None:
        return self._retry

    # -- the unified request surface -------------------------------------------
    def submit(self, request: FetchRequest) -> FetchTicket:
        """Submit one access intent; every mode resolves through here.

        Blocking requests return a ticket with the final outcome (the caller
        must stall to ``arrives_at`` and deregister via :meth:`complete`);
        async requests return the pending ticket, delivered later through
        :meth:`deliver_due`.  Requests for keys already in flight — pending,
        queued in a batch window, blocking or async alike — coalesce onto
        the existing ticket instead of issuing a duplicate wire request.
        """
        if self._queues:
            # Windows whose deadline passed while the engine stalled close
            # before the new request is considered, keeping flush times
            # independent of *which* call happens to observe the deadline.
            self._flush_due(request.at)
        if request.mode == MODE_BLOCKING:
            return self._submit_blocking(request)
        return self._submit_async(request)

    def _submit_blocking(self, request: FetchRequest) -> FetchTicket:
        """Blocking mode: resolve ``key`` to its final outcome at ``at``.

        If the same key is already in flight (e.g. a prefetch raced ahead),
        the pending ticket is joined so the caller only waits for the
        *remaining* time — issuing a second wire request would be wasteful
        and would overstate the stall.  A key waiting in an open batch
        window closes that window immediately (the urgent need pays the
        wire request now).  A pending ticket that is doomed to fail is
        taken over: the blocking caller continues its retry chain
        synchronously, so the returned ticket always reflects the final
        outcome.  The ticket is registered in flight for the duration of
        the stall so that an async fetch issued at the same virtual instant
        coalesces with it (the symmetric twin of the async-first case); the
        caller deregisters it via :meth:`complete` once consumed.
        """
        key, now = request.key, request.at
        pending = self._in_flight.get(key)
        if pending is not None and pending.queued:
            self._flush_source(key[0], now)
            pending = self._in_flight.get(key)
        if pending is not None:
            self.coalesced += 1
            if pending.ok or pending.final:
                return pending
            ticket = self._retry_to_completion(pending, count_failure=True)
            self._in_flight[key] = ticket
            return ticket
        self.blocking_fetches += 1
        ticket = self._retry_to_completion(self._issue(key, now), count_failure=True)
        self._in_flight[key] = ticket
        return ticket

    def _submit_async(self, request: FetchRequest) -> FetchTicket:
        """Async mode: issue (or enqueue) a non-blocking fetch."""
        key, now = request.key, request.at
        pending = self._in_flight.get(key)
        if pending is not None:
            self.coalesced += 1
            return pending
        self.async_fetches += 1
        if (
            not self.batch_policy.enabled
            or not request.batchable
            or (self.breakers is not None and not self.breakers.allow(key[0], now))
        ):
            # Single-key path: batching off, opted out, or the breaker is
            # open (``_issue`` fail-fasts with the usual accounting — an
            # open breaker's request must not linger in a window).
            ticket = self._issue(key, now)
            self._in_flight[key] = ticket
            return ticket
        ticket = FetchTicket(
            key, issued_at=now, arrives_at=_QUEUED_ARRIVAL, element=None,
            ok=False, error=None, final=False,
        )
        ticket.queued = True
        self._in_flight[key] = ticket
        source = key[0]
        queue = self._queues.get(source)
        if queue is None:
            queue = self._queues[source] = BatchQueue(
                source, opened_at=now, window=self.batch_policy.window
            )
        queue.add(ticket, request.utility)
        if self.tracer.enabled:
            self.tracer.emit(
                CAT_FETCH,
                "enqueue",
                now,
                key=trace_key(key),
                source=source,
                deadline=queue.deadline,
            )
        if len(queue) >= self.batch_policy.max_keys:
            self._flush_source(source, now)
        return ticket

    # -- in-flight bookkeeping -------------------------------------------------
    def in_flight(self, key: DataKey) -> FetchTicket | None:
        """The pending (or queued) ticket for ``key``, if any."""
        return self._in_flight.get(key)

    def complete(self, ticket: FetchTicket) -> None:
        """Deregister a blocking ticket its caller has consumed."""
        if self._in_flight.get(ticket.key) is ticket:
            del self._in_flight[ticket.key]

    def deliver_due(self, now: float) -> list[FetchTicket]:
        """Pop and return every async ticket whose outcome is known by ``now``.

        Batch windows whose deadline elapsed close first (at their deadline,
        not at ``now``), so their responses can be among the delivered.
        Failed attempts with retry budget left are re-issued (after backoff)
        instead of delivered; only successes and terminal failures come out.
        Delivery order is deterministic: ``(arrives_at, issued_at, key)`` —
        plain arrival order would leave ties at the mercy of dict insertion
        order, which retry rescheduling perturbs.
        """
        if self._queues:
            self._flush_due(now)
        delivered: list[FetchTicket] = []
        for key in list(self._in_flight):
            ticket = self._in_flight[key]
            while ticket.arrives_at <= now:
                if ticket.ok or ticket.final:
                    delivered.append(ticket)
                    del self._in_flight[key]
                    break
                next_ticket = self._reissue(ticket)
                if next_ticket is None:
                    self.failed_fetches += 1
                    ticket.final = True
                    delivered.append(ticket)
                    del self._in_flight[key]
                    break
                ticket = next_ticket
                self._in_flight[key] = ticket
        delivered.sort(key=lambda t: (t.arrives_at, t.issued_at, repr(t.key)))
        if self.tracer.enabled:
            for ticket in delivered:
                self._trace_complete(ticket)
        return delivered

    def _trace_complete(self, ticket: FetchTicket) -> None:
        self.tracer.emit(  # eires: allow[M2] sole caller guards on tracer.enabled

            CAT_FETCH,
            "complete",
            ticket.first_issued_at,
            dur=ticket.arrives_at - ticket.first_issued_at,
            key=trace_key(ticket.key),
            ok=ticket.ok,
            error=ticket.error,
            attempts=ticket.attempt,
        )

    def pending_count(self) -> int:
        return len(self._in_flight)

    def batch_stats(self) -> BatchStats:
        """Amortization summary of the wire traffic so far."""
        return BatchStats(
            wire_requests=self.wire_requests,
            batches=self.batches,
            batched_keys=self.batched_keys,
            batch_splits=self.batch_splits,
        )

    # -- batch windows ---------------------------------------------------------
    def open_batch_count(self) -> int:
        """Sources with an open (unflushed) coalescing window."""
        return len(self._queues)

    def flush_batches(self, now: float) -> int:
        """Drain every open batch window; returns the keys flushed.

        Used by the dispatch loop at end of stream so open windows close
        deterministically (sources in sorted order, each batch in its
        utility-ranked key order) — tracing-on/off and resumed runs stay
        byte-identical.  Windows whose deadline already passed flush at
        that deadline; still-open windows flush at ``now``.
        """
        flushed = 0
        for source in sorted(self._queues):
            queue = self._queues[source]
            flushed += len(queue)
            self._flush_source(source, min(queue.deadline, now))
        return flushed

    def _flush_due(self, now: float) -> None:
        """Close every window whose deadline has passed, at its deadline."""
        for source in sorted(self._queues):
            queue = self._queues.get(source)
            if queue is not None and queue.deadline <= now:
                self._flush_source(source, queue.deadline)

    def _flush_source(self, source: str, at: float) -> None:
        """Issue one multi-key wire request for a source's open window.

        Success completes every ticket at ``at + l_batch(n)`` and records
        one amortized latency share per key (the monitor's estimates feed
        Eq. 7/8, so planning sees the amortized cost).  Failure marks every
        ticket failed-at-attempt-1 with retry budget intact: the normal
        delivery machinery then *splits* the batch, re-issuing each key
        individually, so one poisoned key cannot terminally fail its
        cohort.  The breaker observes exactly one outcome per wire request.
        """
        queue = self._queues.pop(source, None)
        if queue is None or len(queue) == 0:
            return
        tickets = queue.ranked()
        n = len(tickets)
        self.wire_requests += 1
        if n > 1:
            self.batches += 1
            self.batched_keys += n
        if self._batch_hist is not None:
            self._batch_hist.observe(float(n), at)
        latency = self.batch_policy.batch_latency(n)
        decision = None
        if self._fault_model is not None:
            # One fault draw per wire request (the whole batch shares the
            # wire); the ranked-first key is the deterministic representative.
            decision = self._fault_model.decide(tickets[0].key, at, 1, self._fault_rng)
        tracer = self.tracer
        if decision is None or decision.kind not in (ERROR, DROP):
            if decision is not None and decision.kind == SLOW:
                latency *= decision.latency_scale
            if tracer.enabled:
                tracer.emit(
                    CAT_FETCH,
                    "batch_issue",
                    at,
                    source=source,
                    n=n,
                    keys=[trace_key(t.key) for t in tickets],
                    dur=latency,
                    ok=True,
                )
            share = latency / n
            for ticket in tickets:
                ticket.queued = False
                ticket.wire_started_at = at
                ticket.arrives_at = at + latency
                ticket.element = self._store.lookup(ticket.key)
                ticket.ok = True
                ticket.error = None
                self.monitor.record(ticket.key, share)
            if self._latency_hist is not None:
                self._latency_hist.observe(latency, at)
            if self.breakers is not None:
                self.breakers.record(source, True, at)
            return
        if decision.kind == ERROR:
            # A fast error response: the failure is known after the round trip.
            known_after = latency
            error = "error"
        else:
            # A silent drop: the failure is only known at the attempt timeout.
            known_after = self._retry.attempt_timeout if self._retry is not None else latency
            error = "timeout"
        if self.breakers is not None:
            self.breakers.record(source, False, at)
        if n > 1:
            self.batch_splits += 1
        if tracer.enabled:
            tracer.emit(
                CAT_FETCH,
                "batch_issue",
                at,
                source=source,
                n=n,
                keys=[trace_key(t.key) for t in tickets],
                dur=known_after,
                ok=False,
                error=error,
            )
        for ticket in tickets:
            ticket.queued = False
            ticket.wire_started_at = at
            ticket.arrives_at = at + known_after
            ticket.ok = False
            ticket.error = error

    # -- health-aware estimates ------------------------------------------------
    def source_available(self, source: str, now: float) -> bool:
        """Is the source worth speculative traffic (breaker not open)?"""
        return self.breakers is None or self.breakers.available(source, now)

    def effective_estimate(self, key: DataKey) -> float:
        """``l_remote`` estimate including expected retry overhead.

        With a healthy source (or no fault machinery) this equals the plain
        monitor estimate, so fault-free planning decisions are unchanged.
        """
        estimate = self.monitor.estimate(key)
        if self._retry is None or self.breakers is None:
            return estimate
        failure_rate = self.breakers.failure_rate(key[0])
        if failure_rate <= 0.0:
            return estimate
        return estimate + self._retry.expected_overhead(failure_rate, estimate)

    # -- issue / retry internals ----------------------------------------------
    def _retry_to_completion(self, ticket: FetchTicket, count_failure: bool) -> FetchTicket:
        """Drive a ticket's retry chain synchronously to its final outcome."""
        while not ticket.ok:
            next_ticket = self._reissue(ticket)
            if next_ticket is None:
                if count_failure:
                    self.failed_fetches += 1
                break
            ticket = next_ticket
        ticket.final = True
        if self.tracer.enabled:
            self._trace_complete(ticket)
        return ticket

    def _reissue(self, ticket: FetchTicket) -> FetchTicket | None:
        """The follow-up attempt for a failed ticket, or None if spent."""
        if self._retry is None or ticket.error == "breaker_open":
            return None
        next_attempt = ticket.attempt + 1
        if not self._retry.allows(next_attempt, ticket.arrives_at - ticket.first_issued_at):
            return None
        self.retries += 1
        reissue_at = ticket.arrives_at + self._retry.backoff(ticket.attempt, self._rng)
        if self.tracer.enabled:
            self.tracer.emit(
                CAT_FETCH,
                "retry",
                ticket.arrives_at,
                key=trace_key(ticket.key),
                attempt=next_attempt,
                error=ticket.error,
                reissue_at=reissue_at,
            )
        return self._issue(
            ticket.key, reissue_at, attempt=next_attempt,
            first_issued_at=ticket.first_issued_at,
        )

    def _issue(
        self,
        key: DataKey,
        now: float,
        attempt: int = 1,
        first_issued_at: float | None = None,
    ) -> FetchTicket:
        first = now if first_issued_at is None else first_issued_at
        tracer = self.tracer
        if self.breakers is not None and not self.breakers.allow(key[0], now):
            # Fail fast without a wire attempt: no latency draw, no fault
            # draw, and no window sample (the breaker re-probes by time).
            self.breaker_fastfails += 1
            if tracer.enabled:
                tracer.emit(
                    CAT_FETCH, "breaker_fastfail", now, key=trace_key(key), attempt=attempt
                )
            return FetchTicket(
                key, issued_at=now, arrives_at=now, element=None, ok=False,
                error="breaker_open", attempt=attempt, first_issued_at=first, final=False,
            )
        self.wire_requests += 1
        if tracer.enabled:
            tracer.emit(CAT_FETCH, "issue", now, key=trace_key(key), attempt=attempt)
        latency = self._latency_model.sample(key, self._rng)
        decision = None
        if self._fault_model is not None:
            decision = self._fault_model.decide(key, now, attempt, self._fault_rng)
        if decision is None or decision.kind not in (ERROR, DROP):
            if decision is not None and decision.kind == SLOW:
                latency *= decision.latency_scale
            element = self._store.lookup(key)
            ticket = FetchTicket(
                key, issued_at=now, arrives_at=now + latency, element=element,
                attempt=attempt, first_issued_at=first, final=False,
            )
            self.monitor.record(key, latency)
            if self._latency_hist is not None:
                self._latency_hist.observe(latency, now)
            if self.breakers is not None:
                self.breakers.record(key[0], True, now)
            return ticket
        if decision.kind == ERROR:
            # A fast error response: the failure is known after the round trip.
            known_after = latency
            error = "error"
        else:
            # A silent drop: the failure is only known at the attempt timeout.
            known_after = self._retry.attempt_timeout if self._retry is not None else latency
            error = "timeout"
        if self.breakers is not None:
            self.breakers.record(key[0], False, now)
        return FetchTicket(
            key, issued_at=now, arrives_at=now + known_after, element=None, ok=False,
            error=error, attempt=attempt, first_issued_at=first, final=False,
        )

    def __repr__(self) -> str:
        return (
            f"Transport(blocking={self.blocking_fetches}, async={self.async_fetches}, "
            f"coalesced={self.coalesced}, retries={self.retries}, "
            f"failed={self.failed_fetches}, wire={self.wire_requests}, "
            f"pending={len(self._in_flight)})"
        )


def _counter_property(key: str) -> property:
    def _get(self: Transport):
        return self._cells[key].value

    def _set(self: Transport, value) -> None:
        self._cells[key].value = value

    return property(_get, _set)


for _key in TRANSPORT_COUNTER_KEYS:
    setattr(Transport, _key, _counter_property(_key))
del _key

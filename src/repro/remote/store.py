"""The remote database: a registry of data elements addressable by key.

:class:`RemoteStore` plays the role of the paper's remote sources.  It is an
in-process substitute (see DESIGN.md) — lookups are instantaneous at the
*store*, and all transmission delay is modelled by
:class:`repro.remote.transport.Transport`, which is the component the CEP
engine actually talks to.

A lookup for a missing key returns a :data:`MISSING` sentinel element with an
empty value rather than raising: real remote sources answer "no such row",
and the engine must evaluate predicates against that answer (e.g. ``x NOT IN
REMOTE[...]`` is vacuously true for an empty set).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.remote.element import DataElement, DataKey

__all__ = ["RemoteStore", "MISSING_VALUE"]

MISSING_VALUE: frozenset = frozenset()


class RemoteStore:
    """An in-process key--value store standing in for remote databases.

    Besides explicitly :meth:`put` elements, a *virtual source* can be
    registered with a value factory: elements materialise (and are memoised)
    on first lookup.  This keeps huge key spaces — the synthetic workload's
    100k-key tables — at O(accessed keys) memory.
    """

    def __init__(self) -> None:
        self._elements: dict[DataKey, DataElement] = {}
        self._factories: dict[str, tuple[Callable[[Hashable], Any], int]] = {}

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, key: DataKey) -> bool:
        return key in self._elements

    def put(
        self,
        source: str,
        key: Hashable,
        value: Any,
        size: int = 1,
        parent: DataElement | None = None,
    ) -> DataElement:
        """Insert (or replace) an element and return it."""
        data_key: DataKey = (source, key)
        element = DataElement(data_key, value, size=size, parent=parent)
        self._elements[data_key] = element
        return element

    def put_all(self, source: str, pairs: Iterable[tuple[Hashable, Any]]) -> None:
        """Bulk-insert ``(key, value)`` pairs into ``source``."""
        for key, value in pairs:
            self.put(source, key, value)

    def register_source(
        self, source: str, factory: Callable[[Hashable], Any], size: int = 1
    ) -> None:
        """Declare a virtual source whose values come from ``factory(key)``."""
        if size <= 0:
            raise ValueError(f"element size must be positive: {size}")
        self._factories[source] = (factory, size)

    def lookup(self, key: DataKey) -> DataElement:
        """Fetch the element for ``key``; a missing key yields an empty element.

        Virtual sources materialise through their factory; truly unknown keys
        yield an empty-set sentinel.  Either way the element is memoised so
        later metadata queries (size, hierarchy) treat it uniformly.
        """
        element = self._elements.get(key)
        if element is None:
            factory_entry = self._factories.get(key[0])
            if factory_entry is not None:
                factory, size = factory_entry
                element = DataElement(key, factory(key[1]), size=size)
            else:
                element = DataElement(key, MISSING_VALUE, size=1)
            self._elements[key] = element
        return element

    def get(self, source: str, key: Hashable) -> DataElement:
        return self.lookup((source, key))

    def element_keys(self) -> list[DataKey]:
        return list(self._elements)

    def sources(self) -> set[str]:
        return {source for source, _ in self._elements}

    def __repr__(self) -> str:
        return f"RemoteStore({len(self._elements)} elements, sources={sorted(self.sources())})"

"""Retry policy for failed remote fetches: backoff, caps, deadlines.

A failed fetch attempt (see :mod:`repro.remote.faults`) may be retried.
:class:`RetryPolicy` bounds how hard the transport tries:

* ``max_attempts`` — total attempts per fetch, including the first;
* exponential backoff with multiplicative jitter between attempts
  (``backoff_base * backoff_factor**(attempt-1)``, jittered by ``+-jitter``);
* ``attempt_timeout`` — how long a silently dropped request is awaited
  before it is declared dead (drops produce no response; this is the only
  way their failure becomes *known*);
* ``deadline`` — a per-fetch budget from the first issue; once exceeded, no
  further attempts are made even if ``max_attempts`` is not yet reached.

All durations are virtual microseconds; backoff waits reschedule through the
virtual clock (async fetches re-enter the in-flight table, blocking fetches
extend the stall).  :meth:`expected_overhead` is the deterministic
expectation of the added latency given an observed failure rate — LzEval's
Eq. 8 gate uses it so postponement decisions account for retry cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and timing for re-issuing failed fetch attempts."""

    max_attempts: int = 3
    backoff_base: float = 25.0
    backoff_factor: float = 2.0
    jitter: float = 0.1
    attempt_timeout: float = 400.0
    deadline: float = 4_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff base must be non-negative: {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.attempt_timeout <= 0:
            raise ValueError(f"attempt timeout must be positive: {self.attempt_timeout}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive: {self.deadline}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Wait before re-issuing after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt numbers start at 1: {attempt}")
        wait = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter:
            wait *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return wait

    def allows(self, next_attempt: int, elapsed: float) -> bool:
        """May attempt number ``next_attempt`` be issued ``elapsed`` us in?"""
        return next_attempt <= self.max_attempts and elapsed < self.deadline

    def expected_overhead(self, failure_rate: float, base_latency: float) -> float:
        """Expected extra latency per fetch given an attempt failure rate.

        Deterministic (jitter-free) expectation: attempt ``k`` is reached
        with probability ``p**k`` and adds one failure-detection wait (the
        round trip for errors, the attempt timeout for drops — we use the
        smaller of latency and timeout as the optimistic mix) plus its
        backoff.  Zero when ``failure_rate`` is zero, so fault-free runs see
        exactly the pre-fault estimates.
        """
        p = min(max(failure_rate, 0.0), 0.95)
        if p == 0.0 or self.max_attempts <= 1:
            return 0.0
        detection = min(max(base_latency, 0.0), self.attempt_timeout)
        overhead = 0.0
        weight = p
        for attempt in range(1, self.max_attempts):
            overhead += weight * (detection + self.backoff_base * self.backoff_factor ** (attempt - 1))
            weight *= p
        return overhead

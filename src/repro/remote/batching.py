"""Batched fetch plane: multi-key wire requests under a coalescing window.

EIRES charges every remote access the full transmission latency
``l_remote(d)`` (§2.1), yet PFetch routinely selects several prefetch
candidates at one decision point and LzEval resolves several postponed
obligations on one arrival.  Issuing each as its own wire request pays the
fixed per-request overhead n times; amortizing it across grouped accesses is
the standard lever once remote I/O dominates detection latency (cf. the
join-optimization survey, arXiv:1801.09413).

:class:`BatchPolicy` holds the knobs and the amortized latency model

    l_batch(n) = l_fixed + sum_d l_per(d) = fixed_latency + n * per_key_latency

so a batch of n keys costs far less than n round trips.  :class:`BatchQueue`
is one source's open coalescing window: async requests for that source
accumulate until the (virtual-time) window elapses or ``max_keys`` is
reached, then drain into a single multi-key wire request.  Assembly is
utility-ranked: entries are ordered by descending utility (Eq. 7 candidate
utilities for gated prefetches, ``inf`` for certain-use lazy fetches) with
the key repr as a deterministic tie-break, so the wire order — and
everything downstream of it — is reproducible.

The queues are owned and drained by :class:`~repro.remote.transport.Transport`;
this module holds only the policy, the bookkeeping, and the
:class:`BatchStats` summary surfaced to reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.remote.element import DataKey

__all__ = ["BatchPolicy", "BatchQueue", "BatchStats", "DISABLED_BATCHING"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs and latency model of the batched fetch plane.

    ``window`` is the coalescing window in virtual microseconds: the first
    queued key opens the window, and the batch is issued when it elapses
    (or earlier, when ``max_keys`` accumulate or an urgent blocking need
    closes it).  The defaults (``window=0``, ``max_keys=1``) disable
    batching entirely — every request takes the classic single-key path and
    draws exactly the RNG stream it always did.
    """

    window: float = 0.0
    max_keys: int = 1
    fixed_latency: float = 40.0
    per_key_latency: float = 8.0

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError(f"batch window must be non-negative: {self.window}")
        if self.max_keys < 1:
            raise ValueError(f"batch max_keys must be >= 1: {self.max_keys}")
        if self.fixed_latency < 0:
            raise ValueError(
                f"batch fixed latency must be non-negative: {self.fixed_latency}"
            )
        if self.per_key_latency < 0:
            raise ValueError(
                f"batch per-key latency must be non-negative: {self.per_key_latency}"
            )

    @property
    def enabled(self) -> bool:
        """Batching is on only when a window exists *and* batches can grow."""
        return self.window > 0.0 and self.max_keys > 1

    def batch_latency(self, n_keys: int) -> float:
        """``l_batch = l_fixed + sum_d l_per(d)`` for an ``n_keys``-key batch."""
        if n_keys < 1:
            raise ValueError(f"a wire request carries at least one key: {n_keys}")
        return self.fixed_latency + n_keys * self.per_key_latency


#: The shared do-nothing policy a transport falls back to when none is given.
DISABLED_BATCHING = BatchPolicy()


class _Entry:
    """One queued key with its assembly rank inputs."""

    __slots__ = ("ticket", "utility")

    def __init__(self, ticket, utility: float) -> None:
        self.ticket = ticket
        self.utility = utility


class BatchQueue:
    """One source's open coalescing window."""

    __slots__ = ("source", "opened_at", "deadline", "_entries", "_keys")

    def __init__(self, source: str, opened_at: float, window: float) -> None:
        self.source = source
        self.opened_at = opened_at
        self.deadline = opened_at + window
        self._entries: list[_Entry] = []
        self._keys: set[DataKey] = set()

    def add(self, ticket, utility: float) -> None:
        if ticket.key in self._keys:
            raise ValueError(f"key already queued: {ticket.key!r}")
        self._keys.add(ticket.key)
        self._entries.append(_Entry(ticket, utility))

    def __len__(self) -> int:
        return len(self._entries)

    def ranked(self) -> list:
        """Tickets in wire order: descending utility, key repr tie-break.

        Certain-use (lazy) fetches submit with infinite utility and thus
        lead the batch; gated prefetches follow in Eq. 7 utility order.  The
        repr tie-break keeps assembly deterministic regardless of arrival
        interleaving, so traces and resumed runs stay byte-identical.
        """
        return [
            entry.ticket
            for entry in sorted(
                self._entries, key=lambda e: (-e.utility, repr(e.ticket.key))
            )
        ]

    def __repr__(self) -> str:
        return (
            f"BatchQueue({self.source!r}, {len(self._entries)} keys, "
            f"deadline={self.deadline:.1f})"
        )


@dataclass(frozen=True)
class BatchStats:
    """Amortization summary of one transport's wire traffic.

    ``wire_requests`` counts every request that actually hit the (virtual)
    wire — single-key issues, retries, and batch flushes; breaker fast-fails
    are not wire traffic.  ``batches`` is the multi-key subset,
    ``batched_keys`` the keys they carried, and ``batch_splits`` the failed
    multi-key batches whose keys were re-issued individually.
    """

    wire_requests: int
    batches: int
    batched_keys: int
    batch_splits: int

    @property
    def single_key_requests(self) -> int:
        return self.wire_requests - self.batches

    @property
    def mean_keys_per_batch(self) -> float:
        return self.batched_keys / self.batches if self.batches else 0.0

    @property
    def round_trips_saved(self) -> int:
        """Wire requests avoided versus one round trip per batched key."""
        return self.batched_keys - self.batches

    def as_dict(self) -> dict:
        return {
            "wire_requests": self.wire_requests,
            "batches": self.batches,
            "batched_keys": self.batched_keys,
            "batch_splits": self.batch_splits,
            "single_key_requests": self.single_key_requests,
            "mean_keys_per_batch": round(self.mean_keys_per_batch, 3),
            "round_trips_saved": self.round_trips_saved,
        }

    def __repr__(self) -> str:
        return (
            f"BatchStats(wire={self.wire_requests}, batches={self.batches}, "
            f"keys={self.batched_keys}, splits={self.batch_splits})"
        )

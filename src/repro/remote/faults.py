"""Composable fault models for the remote-data substrate.

EIRES's cost model (§2.1) charges every remote access its transmission
latency ``l_remote(d)`` but assumes the access *succeeds*.  Production remote
sources drop requests, answer with errors, and suffer latency spikes and
error bursts; the fetching strategies must degrade gracefully instead of
silently assuming a perfect network.  A :class:`FaultModel` decides, per
fetch attempt, what the (virtual) network does to the request:

* ``OK``    — the fetch succeeds after the sampled transmission latency;
* ``SLOW``  — the fetch succeeds, but the latency is inflated by a factor
  (a latency spike / congested link);
* ``ERROR`` — the source answers with an error after the normal round trip
  (a transient 5xx: the failure is *known* quickly);
* ``DROP``  — the request (or its response) vanishes; the failure only
  becomes known when the caller's attempt timeout elapses.

All randomness flows through an explicitly seeded ``random.Random`` (see
``sim/rng.py``), independent from the latency-model stream, so a run with
``fault_profile="none"`` consumes exactly the same latency draws as one with
no fault machinery at all — the zero-fault regression gate depends on this.

Models compose: :class:`CompositeFaults` applies the first non-OK decision,
:class:`PerSourceFaults` dispatches on the key's source, and
:class:`ErrorBurstFaults` generates whole outage windows per source.
:func:`make_fault_model` parses the CLI/profile mini-language, e.g.
``"drop:0.1"``, ``"drop:0.05,slow:0.2:8"``, or a named profile like
``"flaky"``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.remote.element import DataKey

__all__ = [
    "OK",
    "SLOW",
    "ERROR",
    "DROP",
    "FaultDecision",
    "FaultModel",
    "NoFaults",
    "DropFaults",
    "TransientErrorFaults",
    "LatencySpikeFaults",
    "ErrorBurstFaults",
    "PerSourceFaults",
    "CompositeFaults",
    "FAULT_PROFILES",
    "make_fault_model",
]

OK = "ok"
SLOW = "slow"
ERROR = "error"
DROP = "drop"


class FaultDecision:
    """What the network does to one fetch attempt."""

    __slots__ = ("kind", "latency_scale")

    def __init__(self, kind: str, latency_scale: float = 1.0) -> None:
        if kind not in (OK, SLOW, ERROR, DROP):
            raise ValueError(f"unknown fault kind {kind!r}")
        if latency_scale < 1.0:
            raise ValueError(f"latency scale must be >= 1: {latency_scale}")
        self.kind = kind
        self.latency_scale = latency_scale

    @property
    def failed(self) -> bool:
        return self.kind in (ERROR, DROP)

    def __repr__(self) -> str:
        if self.kind == SLOW:
            return f"FaultDecision({self.kind}, x{self.latency_scale:g})"
        return f"FaultDecision({self.kind})"


_DECISION_OK = FaultDecision(OK)


class FaultModel(ABC):
    """Decides the fate of one fetch attempt for ``key`` issued at ``now``."""

    @abstractmethod
    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        """The fault (or lack thereof) affecting this attempt."""


class NoFaults(FaultModel):
    """The perfect network the pre-fault substrate assumed."""

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        return _DECISION_OK


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate must be in [0, 1]: {rate}")
    return rate


class DropFaults(FaultModel):
    """Each attempt is silently dropped with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        self.rate = _check_rate(rate)

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        if rng.random() < self.rate:
            return FaultDecision(DROP)
        return _DECISION_OK


class TransientErrorFaults(FaultModel):
    """Each attempt fails with a fast error response with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        self.rate = _check_rate(rate)

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        if rng.random() < self.rate:
            return FaultDecision(ERROR)
        return _DECISION_OK


class LatencySpikeFaults(FaultModel):
    """Each attempt suffers a ``scale``-fold latency spike with probability ``rate``."""

    def __init__(self, rate: float, scale: float = 10.0) -> None:
        self.rate = _check_rate(rate)
        if scale < 1.0:
            raise ValueError(f"spike scale must be >= 1: {scale}")
        self.scale = scale

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        if rng.random() < self.rate:
            return FaultDecision(SLOW, latency_scale=self.scale)
        return _DECISION_OK


class ErrorBurstFaults(FaultModel):
    """Per-source outage windows: every attempt during a burst errors out.

    Burst start gaps are exponential with mean ``mean_gap`` (virtual us) and
    each burst lasts ``duration``.  The schedule is generated lazily per
    source from the fault RNG, so it is reproducible and independent across
    sources (each source draws its own gaps as its requests probe forward in
    time).
    """

    def __init__(self, mean_gap: float, duration: float) -> None:
        if mean_gap <= 0:
            raise ValueError(f"mean gap must be positive: {mean_gap}")
        if duration <= 0:
            raise ValueError(f"burst duration must be positive: {duration}")
        self.mean_gap = mean_gap
        self.duration = duration
        # source -> [burst_start, burst_end] of the latest generated burst
        self._windows: dict[str, list[float]] = {}

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        window = self._windows.get(key[0])
        if window is None:
            window = [rng.expovariate(1.0 / self.mean_gap), 0.0]
            window[1] = window[0] + self.duration
            self._windows[key[0]] = window
        while now > window[1]:
            window[0] = window[1] + rng.expovariate(1.0 / self.mean_gap)
            window[1] = window[0] + self.duration
        if window[0] <= now <= window[1]:
            return FaultDecision(ERROR)
        return _DECISION_OK


class PerSourceFaults(FaultModel):
    """Dispatch to a per-source model, with an optional default."""

    def __init__(self, models: dict[str, FaultModel], default: FaultModel | None = None) -> None:
        self._models = dict(models)
        self._default = default if default is not None else NoFaults()

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        model = self._models.get(key[0], self._default)
        return model.decide(key, now, attempt, rng)


class CompositeFaults(FaultModel):
    """Apply several models; the first non-OK decision wins."""

    def __init__(self, models: list[FaultModel]) -> None:
        if not models:
            raise ValueError("a composite fault model needs at least one part")
        self._models = list(models)

    def decide(self, key: DataKey, now: float, attempt: int, rng: random.Random) -> FaultDecision:
        for model in self._models:
            decision = model.decide(key, now, attempt, rng)
            if decision.kind != OK:
                return decision
        return _DECISION_OK


# Named profiles for the CLI and benchmarks.  Factories, not instances:
# ErrorBurstFaults is stateful, so each Transport needs its own copy.
FAULT_PROFILES: dict[str, object] = {
    "none": lambda: None,
    "lossy": lambda: DropFaults(0.05),
    "flaky": lambda: CompositeFaults(
        [DropFaults(0.05), TransientErrorFaults(0.05), LatencySpikeFaults(0.1, 8.0)]
    ),
    "degraded": lambda: CompositeFaults([DropFaults(0.1), LatencySpikeFaults(0.2, 10.0)]),
    "burst": lambda: ErrorBurstFaults(mean_gap=20_000.0, duration=2_000.0),
}


def _parse_term(term: str) -> FaultModel:
    parts = term.split(":")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "drop" and len(args) == 1:
            return DropFaults(float(args[0]))
        if kind == "error" and len(args) == 1:
            return TransientErrorFaults(float(args[0]))
        if kind == "slow" and len(args) in (1, 2):
            scale = float(args[1]) if len(args) == 2 else 10.0
            return LatencySpikeFaults(float(args[0]), scale)
        if kind == "burst" and len(args) == 2:
            return ErrorBurstFaults(float(args[0]), float(args[1]))
    except ValueError as exc:
        raise ValueError(f"bad fault term {term!r}: {exc}") from None
    raise ValueError(
        f"unknown fault term {term!r}; use drop:RATE, error:RATE, "
        f"slow:RATE[:SCALE], burst:GAP:DURATION, or a named profile "
        f"({', '.join(sorted(FAULT_PROFILES))})"
    )


def make_fault_model(spec: str) -> FaultModel | None:
    """Build a fault model from a profile name or a comma-joined term list.

    ``"none"`` (and ``""``) yield ``None`` — the transport then skips fault
    evaluation entirely, preserving the exact RNG stream of the pre-fault
    substrate.
    """
    spec = (spec or "none").strip()
    factory = FAULT_PROFILES.get(spec)
    if factory is not None:
        return factory()  # type: ignore[operator]
    terms = [term.strip() for term in spec.split(",") if term.strip()]
    if not terms:
        return None
    models = [_parse_term(term) for term in terms]
    if len(models) == 1:
        return models[0]
    return CompositeFaults(models)

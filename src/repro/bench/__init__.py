"""Experiment harness shared by the per-figure benchmark suite."""

from repro.bench.harness import (
    ALL_STRATEGIES,
    ExperimentResult,
    results_dir,
    run_strategy,
    run_strategy_suite,
    save_results,
)

__all__ = [
    "ALL_STRATEGIES",
    "ExperimentResult",
    "run_strategy",
    "run_strategy_suite",
    "save_results",
    "results_dir",
]

"""Shared experiment harness behind the ``benchmarks/`` suite.

One *experiment* evaluates a set of strategies (or one strategy across a
parameter sweep) on a workload and collects the paper's measures — latency
percentiles and throughput — into rows suitable for
:func:`repro.metrics.reporting.format_table`.  Results are also dumped as
JSON under ``results/`` so EXPERIMENTS.md numbers are regenerable.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Iterable, Sequence

from repro.core.config import EiresConfig
from repro.core.framework import EIRES
from repro.core.pipeline import RunResult
from repro.metrics.reporting import format_comparison, format_table
from repro.obs.trace import Tracer
from repro.workloads.base import Workload

__all__ = [
    "run_strategy",
    "run_multi_query",
    "run_strategy_suite",
    "ExperimentResult",
    "save_results",
    "results_dir",
    "wall_time",
]

ALL_STRATEGIES = ("BL1", "BL2", "BL3", "PFetch", "LzEval", "Hybrid")


def results_dir() -> str:
    """``results/`` next to the repository root (created on demand)."""
    path = os.environ.get("REPRO_RESULTS_DIR")
    if path is None:
        path = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "results")
    os.makedirs(path, exist_ok=True)
    return path


def run_strategy(
    workload: Workload,
    strategy: str,
    config: EiresConfig,
    tracer: Tracer | None = None,
    backend: str = "reference",
) -> RunResult:
    """One full replay of a workload under one strategy.

    Pass a :class:`~repro.obs.trace.Tracer` to capture the run's lifecycle
    trace; tracing never changes the result (same RNG streams, same matches).
    ``backend`` names a registered evaluation backend (see
    :func:`repro.backends.list_backends`).
    """
    eires = EIRES(
        workload.query,
        workload.store,
        workload.latency_model,
        strategy=strategy,
        config=config,
        backend=backend,
        tracer=tracer,
    )
    return eires.run(workload.stream)


def wall_time(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Call ``fn`` and return ``(result, wall-clock seconds)``.

    The only sanctioned wall-clock read in the tree (rule D1): every
    *reported result* is virtual-time deterministic, and this helper exists
    solely so benchmarks can report real-machine speedups *next to* those
    results (in sections the bench-regression gate ignores).
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_multi_query(
    workload: Workload,
    specs: Sequence[Any],
    config: EiresConfig,
    tracer: Tracer | None = None,
) -> dict[str, RunResult]:
    """One shared replay of several queries over a workload's stream.

    ``specs`` are :class:`~repro.core.multi.QuerySpec` instances (their
    queries replace the workload's own query; store, latency model, and
    stream come from the workload).  Results are keyed by query name; each
    carries the full transport stats and metrics snapshot of the shared
    substrate, exactly like a single-query run.
    """
    from repro.core.multi import MultiQueryEIRES

    runtime = MultiQueryEIRES(
        specs,
        workload.store,
        workload.latency_model,
        config=config,
        tracer=tracer,
    )
    return runtime.run(workload.stream)


class ExperimentResult:
    """Rows of one experiment plus table/summary rendering.

    ``metrics`` holds one registry snapshot per strategy when the experiment
    was run with observability enabled (see :func:`run_strategy_suite`).
    """

    def __init__(
        self,
        name: str,
        rows: list[dict[str, Any]],
        metrics: dict[str, dict[str, Any]] | None = None,
    ) -> None:
        self.name = name
        self.rows = rows
        self.metrics = metrics if metrics is not None else {}

    def table(self, columns: Sequence[str] = ("strategy", "matches", "p5", "p25", "p50", "p75", "p95")) -> str:
        return format_table(self.name, self.rows, columns)

    def comparison(self, metric: str = "p50", higher_is_better: bool = False) -> str:
        return format_comparison(self.rows, metric=metric, higher_is_better=higher_is_better)

    def row_for(self, strategy: str) -> dict[str, Any]:
        for row in self.rows:
            if row.get("strategy") == strategy:
                return row
        raise KeyError(f"no row for strategy {strategy!r} in {self.name}")

    def metric(self, strategy: str, metric: str) -> float:
        return self.row_for(strategy)[metric]


def run_strategy_suite(
    name: str,
    workload: Workload,
    config: EiresConfig,
    strategies: Iterable[str] = ALL_STRATEGIES,
    extra_fields: dict[str, Any] | None = None,
    trace_sink: Any | None = None,
) -> ExperimentResult:
    """Evaluate several strategies on one workload configuration.

    With ``trace_sink`` (a :class:`~repro.obs.trace.TraceSink`), every
    strategy's run is traced into the shared sink under its own track, and
    per-strategy metrics snapshots are collected on the result.
    """
    rows = []
    metrics: dict[str, dict[str, Any]] = {}
    for strategy in strategies:
        tracer = Tracer(trace_sink, track=strategy) if trace_sink is not None else None
        result = run_strategy(workload, strategy, config, tracer=tracer)
        row = result.summary()
        if extra_fields:
            row.update(extra_fields)
        rows.append(row)
        if result.metrics is not None:
            metrics[strategy] = result.metrics
    return ExperimentResult(name, rows, metrics=metrics)


def save_results(experiment: ExperimentResult, extra: dict[str, Any] | None = None) -> str:
    """Persist an experiment's rows as JSON; returns the file path.

    ``extra`` adds top-level sections *next to* ``rows``.  The bench gate
    (``tools/bench_diff.py``) compares only ``rows``, so machine-dependent
    data (wall-clock timings, say) belongs in an extra section.
    """
    path = os.path.join(results_dir(), f"{experiment.name.replace(' ', '_')}.json")
    payload: dict[str, Any] = {"name": experiment.name, "rows": experiment.rows}
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path

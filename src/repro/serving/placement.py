"""Tenant-to-shard placement: deterministic, replayable, provenance-checked.

A fleet maps each tenant onto exactly one worker shard.  All three
policies are pure functions of the tenant list and the shard count, so a
placement can be *recomputed* from a trace's ``route`` records — that is
how :func:`repro.obs.provenance.verify_serving_record` proves the router
sent every tenant where the policy says it should.

``hash`` placement deliberately avoids Python's builtin ``hash()``: string
hashing is salted per process (``PYTHONHASHSEED``), which would make
placement — and therefore every downstream metric and trace — differ
between two runs of the same fleet.  :func:`stable_hash` is FNV-1a over
the UTF-8 bytes of the tenant name: stable across processes, platforms,
and Python versions.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "PLACE_ROUND_ROBIN",
    "PLACE_HASH",
    "PLACE_PINNED",
    "PLACEMENTS",
    "stable_hash",
    "assign_shards",
]

PLACE_ROUND_ROBIN = "round_robin"   # tenant i -> shard i % n_shards
PLACE_HASH = "hash"                 # tenant  -> stable_hash(name) % n_shards
PLACE_PINNED = "pinned"             # explicit tenant -> shard mapping

PLACEMENTS = (PLACE_ROUND_ROBIN, PLACE_HASH, PLACE_PINNED)

# FNV-1a, 64-bit (http://www.isthe.com/chongo/tech/comp/fnv/).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash(text: str) -> int:
    """64-bit FNV-1a of ``text``'s UTF-8 bytes; stable across processes."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK64
    return value


def assign_shards(
    tenants: Sequence[str],
    n_shards: int,
    policy: str = PLACE_ROUND_ROBIN,
    pins: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Map every tenant name to a shard id in ``[0, n_shards)``.

    ``pins`` is required (and only legal) for the ``pinned`` policy and
    must cover every tenant with an in-range shard id.  Raises
    :class:`ValueError` on any inconsistency — placement errors must fail
    the build, not surface as a half-routed fleet.
    """
    if n_shards < 1:
        raise ValueError(f"fleet needs at least one shard: n_shards={n_shards}")
    if policy not in PLACEMENTS:
        raise ValueError(
            f"unknown placement policy {policy!r}; expected one of {PLACEMENTS}"
        )
    if policy == PLACE_PINNED:
        if pins is None:
            raise ValueError("pinned placement requires an explicit pins mapping")
        missing = [name for name in tenants if name not in pins]
        if missing:
            raise ValueError(f"pinned placement misses tenants: {missing}")
        for name in tenants:
            shard = pins[name]
            if not (0 <= shard < n_shards):
                raise ValueError(
                    f"tenant {name!r} pinned to shard {shard}, "
                    f"outside [0, {n_shards})"
                )
        return {name: pins[name] for name in tenants}
    if pins is not None:
        raise ValueError(f"pins are only valid with the {PLACE_PINNED!r} policy")
    if policy == PLACE_ROUND_ROBIN:
        return {name: index % n_shards for index, name in enumerate(tenants)}
    return {name: stable_hash(name) % n_shards for name in tenants}

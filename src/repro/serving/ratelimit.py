"""Per-tenant admission control: a virtual-time token bucket.

Rates are declared in events per virtual *second* (the clock runs in
microseconds); the bucket refills continuously, so admission depends only
on the event timestamps — never on wall time or arrival jitter — and a
fleet replay admits and throttles the exact same events every run.

Construction is confined to :mod:`repro.serving` (analysis rule A7):
tenants declare ``rate_limit``/``burst`` on their :class:`TenantSpec` and
:class:`~repro.serving.fleet.FleetBuilder` builds the buckets, so every
throttle decision carries a ``serving`` trace record the provenance
replayer can verify.
"""

from __future__ import annotations

__all__ = ["TokenBucket", "US_PER_SECOND"]

US_PER_SECOND = 1_000_000.0


class TokenBucket:
    """Continuous-refill token bucket over virtual microseconds.

    ``rate`` is tokens (events) per virtual second; ``burst`` caps the
    bucket.  The bucket starts full, so a tenant's first ``burst`` events
    are always admitted.  ``burst`` must be at least 1.0 — a smaller cap
    could never accumulate a whole token and would throttle everything.
    """

    __slots__ = ("rate", "burst", "tokens", "last", "admitted", "throttled")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"token-bucket rate must be positive: {rate}")
        if burst < 1.0:
            raise ValueError(
                f"token-bucket burst must be at least 1.0 (got {burst}); "
                "a smaller bucket can never hold a whole token"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = 0.0
        self.admitted = 0
        self.throttled = 0

    def refill(self, now: float) -> float:
        """Advance the bucket to ``now``; returns the refilled token count."""
        elapsed = max(0.0, now - self.last)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate / US_PER_SECOND)
        self.last = now
        return self.tokens

    def decide(self, now: float) -> tuple[bool, float]:
        """One admission decision plus the post-refill level it was made at.

        The token level is what the fleet's ``serving`` trace records carry
        — the provenance replayer re-derives the decision from it.
        """
        tokens = self.refill(now)
        if tokens >= 1.0:
            self.tokens -= 1.0
            self.admitted += 1
            return True, tokens
        self.throttled += 1
        return False, tokens

    def admit(self, now: float) -> bool:
        """One admission decision at virtual time ``now``."""
        return self.decide(now)[0]

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate}/s, burst={self.burst}, "
            f"tokens={self.tokens:.2f}, admitted={self.admitted}, "
            f"throttled={self.throttled})"
        )

"""repro.serving — the multi-tenant fleet layer.

Partitions tenants across worker shards, each a shard-local
:class:`~repro.runtime.builder.Runtime`, all sharing one remote-data plane
(transport + batching + cache) and one virtual clock — so fetches overlap
and amortise across tenants while dispatch stays deterministic and a
single-shard single-tenant fleet is byte-identical to a plain
``RuntimeBuilder`` run.

Compose fleets exclusively through :class:`FleetBuilder` (analysis rule
A7): declare :class:`TenantSpec`\\ s, pick a placement policy, ``build()``,
``dispatch(stream)``.
"""

from repro.serving.fleet import Fleet, FleetBuilder, FleetResult
from repro.serving.placement import (
    PLACE_HASH,
    PLACE_PINNED,
    PLACE_ROUND_ROBIN,
    PLACEMENTS,
    assign_shards,
    stable_hash,
)
from repro.serving.ratelimit import TokenBucket
from repro.serving.tenant import TenantSpec

__all__ = [
    "FleetBuilder",
    "Fleet",
    "FleetResult",
    "TenantSpec",
    "TokenBucket",
    "PLACE_ROUND_ROBIN",
    "PLACE_HASH",
    "PLACE_PINNED",
    "PLACEMENTS",
    "assign_shards",
    "stable_hash",
]

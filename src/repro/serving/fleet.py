"""The fleet layer: tenants on shards over one shared remote-data plane.

:class:`FleetBuilder` is the serving-side composition root.  It validates
the :class:`~repro.serving.tenant.TenantSpec` set, maps tenants onto
worker shards (:mod:`repro.serving.placement`), and assembles one
shard-local :class:`~repro.runtime.builder.Runtime` per shard — all on a
single :class:`~repro.runtime.builder.SharedPlane`, so every shard shares
the virtual clock, the metrics registry, and the remote-data plane
(transport + batching + cache).  Overlapping keys fetched by different
tenants coalesce on the shared transport and hit the shared cache: the
whole point of multi-tenancy here is that total wire traffic is *less*
than the sum of isolated runs.

:meth:`Fleet.dispatch` is the multi-shard generalisation of
:func:`repro.runtime.dispatch.dispatch`: one event at a time on the shared
clock, shards in id order, sessions in priority order within a shard —
the same ``deliver_event`` body per session, so a single-shard
single-tenant fleet is byte-identical to a plain ``RuntimeBuilder`` run.
Per-tenant token buckets gate admission (decided once per tenant per
event), and every route/admit/throttle decision lands on the trace bus as
a ``serving`` record that :func:`repro.obs.provenance.replay_trace`
re-derives.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.metrics.throughput import ThroughputMeter
from repro.obs.series import SeriesSampler
from repro.obs.slo import SloPlane
from repro.obs.trace import CAT_EVENT, CAT_SERVING
from repro.remote.transport import TRANSPORT_COUNTER_KEYS
from repro.runtime.builder import Runtime, RuntimeBuilder, SharedPlane
from repro.runtime.dispatch import (
    THROUGHPUT_RUN,
    THROUGHPUT_SHARED,
    RunResult,
    collect_results,
    deliver_event,
    finish_sessions,
    flush_transports,
)
from repro.runtime.session import QuerySpec
from repro.serving.placement import PLACE_ROUND_ROBIN, assign_shards
from repro.serving.ratelimit import TokenBucket
from repro.serving.tenant import TenantSpec
from repro.shedding.policy import SHED_NONE

__all__ = ["FleetBuilder", "Fleet", "FleetResult"]


class FleetBuilder:
    """Declares a fleet: tenants, shard count, placement policy.

    Usage::

        fleet = (
            FleetBuilder(store, UniformLatency(10, 100), n_shards=3)
            .add_tenant(TenantSpec("alpha", [q1, q2], rate_limit=500.0))
            .add_tenant(TenantSpec("beta", q3))
            .build()
        )
        result = fleet.dispatch(stream)       # FleetResult
        alpha = result.tenant_result("alpha") # {query_name: RunResult}
    """

    def __init__(
        self,
        store,
        latency_model,
        n_shards: int = 1,
        placement: str = PLACE_ROUND_ROBIN,
        pins: Mapping[str, int] | None = None,
        config=None,
        tracer=None,
    ) -> None:
        self.store = store
        self.latency_model = latency_model
        self.n_shards = n_shards
        self.placement_policy = placement
        self.pins = dict(pins) if pins is not None else None
        self.config = config
        self.tracer = tracer
        self._tenants: list[TenantSpec] = []

    def add_tenant(self, tenant: TenantSpec) -> "FleetBuilder":
        """Register a tenant; chainable."""
        self._tenants.append(tenant)
        return self

    def build(self) -> "Fleet":
        """Validate the tenant set, place it, and assemble the shard runtimes."""
        tenants = self._tenants
        if not tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique: {names}")
        query_names = [name for tenant in tenants for name in tenant.query_names]
        if len(set(query_names)) != len(query_names):
            raise ValueError(
                f"query names must be unique across the fleet: {query_names}"
            )

        placement = assign_shards(
            names, self.n_shards, self.placement_policy, self.pins
        )

        # One RuntimeBuilder per shard, all on the SAME config object so the
        # plane built from the first also governs every other shard's build.
        shard_builders = [
            RuntimeBuilder(
                self.store, self.latency_model,
                config=self.config, tracer=self.tracer,
            )
            for _ in range(self.n_shards)
        ]
        self.config = config = shard_builders[0].config
        for builder in shard_builders:
            builder.config = config

        # Tenant quotas ride the shedding plane; without a policy there is
        # no detector to enforce them, so the spec is a silent no-op — fail
        # loudly instead.
        scoped = len(tenants) > 1 or self.n_shards > 1
        for tenant in tenants:
            if tenant.run_budget is not None and config.shed_policy == SHED_NONE:
                raise ValueError(
                    f"tenant {tenant.name!r} declares run_budget="
                    f"{tenant.run_budget} but the fleet config has "
                    f"shed_policy='none'; quotas need a shedding policy to "
                    "enforce them"
                )
            builder = shard_builders[placement[tenant.name]]
            for query in tenant.queries:
                builder.add_spec(QuerySpec(
                    query,
                    priority=tenant.priority,
                    strategy=tenant.strategy,
                    backend=tenant.backend,
                    run_budget=tenant.run_budget,
                    scope=(
                        f"tenant.{tenant.name}.query.{query.name}"
                        if scoped else None
                    ),
                ))

        empty = [i for i, builder in enumerate(shard_builders) if not builder._specs]
        if empty:
            raise ValueError(
                f"shards {empty} received no tenants under "
                f"{self.placement_policy!r} placement; reduce n_shards or pin "
                "tenants explicitly"
            )

        plane = shard_builders[0].build_plane()
        runtimes = [builder.build(plane=plane) for builder in shard_builders]

        tenant_of = {
            query_name: tenant.name
            for tenant in tenants
            for query_name in tenant.query_names
        }
        buckets = {
            tenant.name: (
                TokenBucket(tenant.rate_limit, tenant.burst)
                if tenant.rate_limit is not None
                else None
            )
            for tenant in tenants
        }
        # Per-tenant SLO planes live under the tenant's metric scope so
        # their slo.* gauges never collide with a config-level SloPlane.
        tenant_slos: dict[str, SloPlane] = {}
        transport = plane.transport
        for tenant in tenants:
            if tenant.slo is None:
                continue
            slo = SloPlane(
                tenant.slo, plane.metrics.scoped(f"tenant.{tenant.name}")
            )
            sessions = [
                session
                for session in runtimes[placement[tenant.name]].sessions
                if tenant_of[session.name] == tenant.name
            ]
            # The remote-data plane is shared by design, so the fetch budget
            # is a plane-wide burn; shed events are the tenant's own.
            slo.bind_sources(
                wire_requests=lambda: transport.wire_requests,
                events_shed=lambda sessions=sessions: sum(
                    session.shedder.stats["events_dropped"]
                    for session in sessions
                    if session.shedder is not None
                ),
            )
            tenant_slos[tenant.name] = slo

        return Fleet(
            plane=plane,
            runtimes=runtimes,
            tenants=list(tenants),
            placement=placement,
            policy=self.placement_policy,
            buckets=buckets,
            tenant_slos=tenant_slos,
            tenant_of=tenant_of,
        )


class Fleet:
    """The assembled fleet: shard runtimes on one plane, plus admission state.

    Built exclusively by :class:`FleetBuilder` (analysis rule A7).
    """

    def __init__(
        self,
        plane: SharedPlane,
        runtimes: list[Runtime],
        tenants: list[TenantSpec],
        placement: dict[str, int],
        policy: str,
        buckets: dict[str, TokenBucket | None],
        tenant_slos: dict[str, SloPlane],
        tenant_of: dict[str, str],
    ) -> None:
        self.plane = plane
        self.runtimes = runtimes
        self.tenants = tenants
        self.placement = placement
        self.policy = policy
        self.buckets = buckets
        self.tenant_slos = tenant_slos
        self.tenant_of = tenant_of

    @property
    def n_shards(self) -> int:
        return len(self.runtimes)

    def dispatch(self, stream, smoothing_window: int = 1) -> "FleetResult":
        """Replay ``stream`` through every shard on the shared clock.

        The multi-shard generalisation of the single-runtime dispatch loop:
        for each event, shards are visited in id order and sessions in
        priority order (the deterministic tie-break — shard id, then event
        sequence — is the iteration order itself).  Per-tenant admission is
        decided once per tenant per event; throttled tenants' sessions skip
        the event entirely, substrate work included.
        """
        plane = self.plane
        clock = plane.clock
        tracer = plane.tracer
        config = plane.config
        n_sessions = sum(len(runtime.sessions) for runtime in self.runtimes)
        multi = n_sessions > 1

        for runtime in self.runtimes:
            for session in runtime.sessions:
                session.begin_run(
                    smoothing_window=smoothing_window,
                    qs=config.report_percentiles,
                )
        sampler = (
            SeriesSampler(plane.metrics, config.series_interval)
            if config.series_interval > 0
            else None
        )
        throughput = ThroughputMeter()
        start = clock.now

        if tracer.enabled:
            for index, tenant in enumerate(self.tenants):
                tracer.emit(
                    CAT_SERVING, "route", clock.now,
                    tenant=tenant.name,
                    shard=self.placement[tenant.name],
                    policy=self.policy,
                    index=index,
                    n_shards=self.n_shards,
                )

        admitted_counts = {tenant.name: 0 for tenant in self.tenants}
        throttled_counts = {tenant.name: 0 for tenant in self.tenants}
        delivered = [0] * self.n_shards
        events_total = 0

        for index, event in enumerate(stream):
            events_total += 1
            clock.advance_to(event.t)
            if tracer.enabled:
                tracer.emit(
                    CAT_EVENT, "arrival", event.t,
                    seq_no=event.seq, picked_up=clock.now,
                )
            decisions: dict[str, bool] = {}
            for shard_id, runtime in enumerate(self.runtimes):
                if runtime.slo is not None:
                    runtime.slo.observe_event(clock.now)
                shard_touched = False
                for session in runtime.sessions:
                    tenant_name = self.tenant_of[session.name]
                    admitted = decisions.get(tenant_name)
                    if admitted is None:
                        admitted = self._admit(tenant_name, event, clock.now)
                        decisions[tenant_name] = admitted
                        if admitted:
                            admitted_counts[tenant_name] += 1
                            tenant_slo = self.tenant_slos.get(tenant_name)
                            if tenant_slo is not None:
                                tenant_slo.observe_event(clock.now)
                        else:
                            throttled_counts[tenant_name] += 1
                    if not admitted:
                        continue
                    shard_touched = True
                    slo = self.tenant_slos.get(tenant_name)
                    if slo is None:
                        slo = runtime.slo
                    deliver_event(session, event, index, clock, tracer, multi, slo)
                if shard_touched:
                    delivered[shard_id] += 1
            throughput.record_event(clock.now)
            if sampler is not None and sampler.due(clock.now):
                self._evaluate_slos(clock.now)
                sampler.maybe_sample(clock.now)

        flushed: set[int] = set()
        for runtime in self.runtimes:
            flush_transports(runtime.sessions, clock, flushed)
        for runtime in self.runtimes:
            finish_sessions(runtime.sessions)

        self._evaluate_slos(clock.now)
        if sampler is not None:
            sampler.finalize(clock.now)
        series_rows = sampler.rows() if sampler is not None else None

        scope = THROUGHPUT_SHARED if multi else THROUGHPUT_RUN
        duration_us = clock.now - start
        results: dict[str, dict[str, RunResult]] = {
            tenant.name: {} for tenant in self.tenants
        }
        for runtime in self.runtimes:
            for session, result in zip(
                runtime.sessions,
                collect_results(
                    runtime.sessions, throughput, duration_us, scope,
                    shared_cache=plane.cache, series_rows=series_rows,
                ),
            ):
                results[self.tenant_of[session.name]][session.name] = result

        transport = plane.transport
        return FleetResult(
            results=results,
            placement=dict(self.placement),
            policy=self.policy,
            n_shards=self.n_shards,
            events_total=events_total,
            admitted=admitted_counts,
            throttled=throttled_counts,
            delivered=delivered,
            duration_us=duration_us,
            transport_stats={
                key: getattr(transport, key) for key in TRANSPORT_COUNTER_KEYS
            },
            cache_stats=(
                plane.cache.stats.as_dict() if plane.cache is not None else None
            ),
        )

    def _admit(self, tenant_name: str, event, now: float) -> bool:
        """One admission decision, with its ``serving`` provenance record."""
        bucket = self.buckets.get(tenant_name)
        if bucket is None:
            return True
        admitted, tokens = bucket.decide(now)
        tracer = self.plane.tracer
        if tracer.enabled:
            tracer.emit(
                CAT_SERVING,
                "admit" if admitted else "throttle",
                now,
                tenant=tenant_name,
                seq_no=event.seq,
                tokens=tokens,
                rate=bucket.rate,
                burst=bucket.burst,
            )
        return admitted

    def _evaluate_slos(self, now: float) -> None:
        for runtime in self.runtimes:
            if runtime.slo is not None:
                runtime.slo.evaluate(now)
        for slo in self.tenant_slos.values():
            slo.evaluate(now)

    def __repr__(self) -> str:
        return (
            f"Fleet({len(self.tenants)} tenants on {self.n_shards} shard(s), "
            f"placement={self.policy})"
        )


class FleetResult:
    """Everything one fleet replay measured, per tenant and fleet-wide.

    ``results`` maps tenant name to that tenant's per-query
    :class:`~repro.runtime.dispatch.RunResult`\\ s — the same objects a
    plain runtime run would return.  The fleet-level fields cover what no
    single tenant can see: placement, shard skew, and how much the shared
    remote-data plane amortised (total fetch demand vs. wire requests).
    """

    def __init__(
        self,
        results: dict[str, dict[str, RunResult]],
        placement: dict[str, int],
        policy: str,
        n_shards: int,
        events_total: int,
        admitted: dict[str, int],
        throttled: dict[str, int],
        delivered: list[int],
        duration_us: float,
        transport_stats: dict[str, Any],
        cache_stats: dict[str, Any] | None,
    ) -> None:
        self.results = results
        self.placement = placement
        self.policy = policy
        self.n_shards = n_shards
        self.events_total = events_total
        self.admitted = admitted
        self.throttled = throttled
        self.delivered = delivered
        self.duration_us = duration_us
        self.transport_stats = transport_stats
        self.cache_stats = cache_stats

    def tenant_result(self, name: str) -> dict[str, RunResult]:
        if name not in self.results:
            raise KeyError(f"no such tenant: {name!r}")
        return self.results[name]

    @property
    def skew(self) -> int:
        """Spread between the busiest and idlest shard, in delivered events."""
        return max(self.delivered) - min(self.delivered) if self.delivered else 0

    @property
    def amortization(self) -> float:
        """Fetch demand per wire request (>1.0 = the shared plane amortised).

        Demand is what the strategies asked for (blocking + async fetches);
        wire requests are what actually crossed the network after the shared
        transport coalesced and batched across every tenant.
        """
        wire = self.transport_stats.get("wire_requests", 0)
        if not wire:
            return 0.0
        demand = (
            self.transport_stats.get("blocking_fetches", 0)
            + self.transport_stats.get("async_fetches", 0)
        )
        return demand / wire

    def summary(self) -> dict[str, Any]:
        """Flat fleet-level summary (per-tenant details live in results)."""
        data: dict[str, Any] = {
            "n_shards": self.n_shards,
            "n_tenants": len(self.results),
            "placement": self.policy,
            "events": self.events_total,
            "admitted": sum(self.admitted.values()),
            "throttled": sum(self.throttled.values()),
            "skew": self.skew,
            "amortization": round(self.amortization, 3),
        }
        for shard_id, count in enumerate(self.delivered):
            data[f"shard.{shard_id}.delivered"] = count
        data.update(
            {f"transport.{k}": v for k, v in self.transport_stats.items()}  # eires: allow[D3] TRANSPORT_COUNTER_KEYS report order
        )
        if self.cache_stats is not None:
            data.update({f"cache.{k}": v for k, v in self.cache_stats.items()})  # eires: allow[D3] CACHE_COUNTER_KEYS report order
        return data

    def __repr__(self) -> str:
        return (
            f"FleetResult({len(self.results)} tenants, {self.n_shards} shard(s), "
            f"{self.events_total} events, skew={self.skew}, "
            f"amortization={self.amortization:.2f})"
        )

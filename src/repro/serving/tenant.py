"""What one tenant asks of the fleet: queries, rate, quota, objective.

A :class:`TenantSpec` is declarative — it constructs nothing.  The fleet
builder turns it into per-shard :class:`~repro.runtime.session.QuerySpec`
entries (carrying the tenant's run quota and metric scope), a token bucket
when a rate limit is declared, and a per-tenant SLO plane when an
objective is.  Validation happens here, eagerly, so a bad spec fails at
declaration time with the field that is wrong — not mid-dispatch.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.slo import SloSpec
from repro.query.ast import Query

__all__ = ["TenantSpec"]


class TenantSpec:
    """One tenant's declaration: queries plus serving constraints.

    ``queries`` is one :class:`~repro.query.ast.Query` or a sequence of
    them.  ``rate_limit`` is events per virtual second admitted to this
    tenant's sessions (``None`` = unlimited); ``burst`` caps the token
    bucket and defaults to ``max(1.0, rate_limit)``.  ``run_budget`` is
    the tenant's partial-match quota, mapped onto every query's shedding
    detector (requires a shedding policy on the fleet config).  ``slo``
    attaches a per-tenant :class:`~repro.obs.slo.SloSpec` evaluated on the
    tenant's scoped metrics.  ``priority`` weights the tenant's sessions
    in the shard dispatch order and the shared-cache utility sum.
    """

    __slots__ = ("name", "queries", "rate_limit", "burst", "run_budget", "slo",
                 "priority", "strategy", "backend")

    def __init__(
        self,
        name: str,
        queries: Query | Sequence[Query],
        rate_limit: float | None = None,
        burst: float | None = None,
        run_budget: int | None = None,
        slo: SloSpec | None = None,
        priority: float = 1.0,
        strategy: str = "Hybrid",
        backend: str = "automaton",
    ) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"tenant name must be a non-empty string: {name!r}")
        if isinstance(queries, Query):
            queries = (queries,)
        else:
            queries = tuple(queries)
        if not queries:
            raise ValueError(f"tenant {name!r} declares no queries")
        if rate_limit is not None and rate_limit <= 0.0:
            raise ValueError(
                f"tenant {name!r}: rate limit must be positive events/s, "
                f"got {rate_limit}"
            )
        if burst is not None:
            if rate_limit is None:
                raise ValueError(
                    f"tenant {name!r}: burst without a rate limit is meaningless"
                )
            if burst < 1.0:
                raise ValueError(
                    f"tenant {name!r}: burst must be at least 1.0, got {burst}"
                )
        elif rate_limit is not None:
            burst = max(1.0, rate_limit)
        if run_budget is not None and run_budget <= 0:
            raise ValueError(
                f"tenant {name!r}: run budget must be positive, got {run_budget}"
            )
        if priority <= 0:
            raise ValueError(
                f"tenant {name!r}: priority must be positive, got {priority}"
            )
        self.name = name
        self.queries = queries
        self.rate_limit = rate_limit
        self.burst = burst
        self.run_budget = run_budget
        self.slo = slo
        self.priority = priority
        self.strategy = strategy
        self.backend = backend

    @property
    def query_names(self) -> tuple[str, ...]:
        return tuple(query.name for query in self.queries)

    def __repr__(self) -> str:
        limit = f", rate_limit={self.rate_limit}/s" if self.rate_limit is not None else ""
        return f"TenantSpec({self.name!r}, queries={list(self.query_names)}{limit})"

"""Per-query units of the runtime layer.

A :class:`QuerySpec` declares *what* to run (query, priority, strategy
name, engine backend); a :class:`QuerySession` is the assembled unit the
dispatch loop drives — automaton, engine, attached fetch strategy, utility
model, and rate estimators around the substrate shared by all sessions.
Sessions are built exclusively by
:class:`~repro.runtime.builder.RuntimeBuilder`.
"""

from __future__ import annotations

from repro.backends import resolve_backend
from repro.engine.interface import MatchRecord
from repro.metrics.latency import LatencyCollector
from repro.nfa.automaton import Automaton
from repro.query.ast import Query
from repro.strategies.base import FetchStrategy
from repro.utility.model import UtilityModel
from repro.utility.rates import RateEstimator

__all__ = ["QuerySpec", "QuerySession"]

# Legacy spellings kept for callers predating the backend registry; both
# resolve through repro.backends ("automaton" is an alias of "reference").
BACKEND_AUTOMATON = "automaton"
BACKEND_TREE = "tree"


class QuerySpec:
    """One query registered with the runtime.

    ``strategy`` may be a paper name (``"BL1"`` .. ``"Hybrid"``) or an
    already constructed :class:`~repro.strategies.base.FetchStrategy`
    instance; ``backend`` names a registered evaluation backend (see
    :func:`repro.backends.list_backends`) and is stored in canonical form
    (``"automaton"`` normalises to ``"reference"``).

    ``run_budget`` overrides the config-wide shedding run budget for this
    query alone (the fleet layer maps per-tenant quotas onto it); ``scope``
    overrides the session's metric namespace (default: ``query.<name>``
    when several sessions share one registry).  Both default to ``None`` —
    the spec then behaves exactly as it did before the fields existed.
    """

    __slots__ = ("query", "priority", "strategy_name", "strategy_instance", "backend",
                 "run_budget", "scope")

    def __init__(
        self,
        query: Query,
        priority: float = 1.0,
        strategy: str | FetchStrategy = "Hybrid",
        backend: str = BACKEND_AUTOMATON,
        run_budget: int | None = None,
        scope: str | None = None,
    ) -> None:
        if priority <= 0:
            raise ValueError(f"query priority must be positive: {priority}")
        if run_budget is not None and run_budget <= 0:
            raise ValueError(f"run budget must be positive: {run_budget}")
        self.query = query
        self.priority = priority
        if isinstance(strategy, str):
            self.strategy_name = strategy
            self.strategy_instance: FetchStrategy | None = None
        else:
            self.strategy_name = strategy.name
            self.strategy_instance = strategy
        self.backend = resolve_backend(backend)
        self.run_budget = run_budget
        self.scope = scope

    def __repr__(self) -> str:
        return f"QuerySpec({self.query.name!r}, priority={self.priority}, {self.strategy_name})"


class QuerySession:
    """One query's assembled moving parts around the shared substrate.

    ``matches`` and ``latency`` are (re)initialised by the dispatch loop at
    the start of every replay; everything else is build-time state.
    """

    __slots__ = ("spec", "automaton", "engine", "strategy", "utility", "rates",
                 "shedder", "matches", "latency")

    def __init__(
        self,
        spec: QuerySpec | None,
        automaton: Automaton,
        engine,
        strategy: FetchStrategy,
        utility: UtilityModel | None,
        rates: RateEstimator | None,
        shedder=None,
    ) -> None:
        self.spec = spec
        self.automaton = automaton
        self.engine = engine
        self.strategy = strategy
        self.utility = utility
        self.rates = rates
        # Overload control; None unless the config names a shedding policy
        # (the default build carries no shedding plane at all).
        self.shedder = shedder
        self.matches: list[MatchRecord] = []
        self.latency = LatencyCollector()

    @property
    def name(self) -> str:
        # Hand-built sessions (the legacy Pipeline shim) carry no spec; the
        # automaton's name then identifies the session.
        return self.spec.query.name if self.spec is not None else self.automaton.name

    @property
    def priority(self) -> float:
        return self.spec.priority if self.spec is not None else 1.0

    def begin_run(self, smoothing_window: int = 1, qs=None) -> None:
        """Reset the per-replay collectors (the dispatch loop calls this)."""
        self.matches = []
        if qs is None:
            self.latency = LatencyCollector(smoothing_window=smoothing_window)
        else:
            self.latency = LatencyCollector(smoothing_window=smoothing_window, qs=qs)

    def __repr__(self) -> str:
        return f"QuerySession({self.name!r}, {self.strategy.name}, priority={self.priority})"

"""The runtime layer: one composition root and one dispatch loop.

This package assembles the paper's Fig. 4 architecture exactly once, for any
number of queries:

* :class:`~repro.runtime.builder.RuntimeBuilder` wires the shared substrate
  — virtual clock, RNG tree, transport (fault model, retry policy, breaker
  board), cache, latency monitor, tracer, and metrics registry — from an
  :class:`~repro.core.config.EiresConfig`;
* :class:`~repro.runtime.session.QuerySession` bundles the per-query moving
  parts (automaton, engine, fetch strategy, utility model, rate estimators);
* :func:`~repro.runtime.dispatch.dispatch` replays a stream through N
  sessions in priority order — the only event loop in the system, owning
  clock advance, trace emission, latency/throughput recording, end-of-stream
  flush, and :class:`~repro.runtime.dispatch.RunResult` assembly.

The public facades :class:`repro.EIRES` and
:class:`repro.core.multi.MultiQueryEIRES` are thin shells over this layer;
anything they can do, a hand-held :class:`Runtime` can do too.
"""

from repro.runtime.builder import Runtime, RuntimeBuilder
from repro.runtime.dispatch import RunResult, dispatch
from repro.runtime.session import QuerySession, QuerySpec

__all__ = [
    "RuntimeBuilder",
    "Runtime",
    "QuerySession",
    "QuerySpec",
    "RunResult",
    "dispatch",
]

"""The composition root: one place that assembles Fig. 4, for N queries.

:class:`RuntimeBuilder` is the only code in the system that constructs the
full substrate — virtual clock, RNG tree, transport (with fault model,
retry policy, and breaker board), cache, latency monitor, tracer, and
metrics registry — and wires per-query sessions onto it.  Both public
facades (:class:`repro.EIRES` and
:class:`repro.core.multi.MultiQueryEIRES`) delegate here, so single- and
multi-query runs get identical fault tolerance, tracing, provenance, and
metrics plumbing.

The import of :class:`~repro.core.config.EiresConfig` is deferred to call
time: the facades in :mod:`repro.core` import this module, and the runtime
layer must sit *below* them in the architecture (see
``tools/check_architecture.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends import get_backend
from repro.cache.base import Cache
from repro.cache.cost_based import CostBasedCache
from repro.cache.history import HitHistory
from repro.cache.lru import LRUCache
from repro.events.stream import Stream
from repro.nfa.compiler import compile_query
from repro.obs.registry import MetricsRegistry
from repro.obs.series import SeriesSampler
from repro.obs.slo import SloPlane, SloSpec
from repro.obs.spans import SpanTracker
from repro.obs.trace import NULL_TRACER, Tracer
from repro.query.ast import Query
from repro.remote.batching import BatchPolicy
from repro.remote.element import DataKey
from repro.remote.faults import make_fault_model
from repro.remote.monitor import BreakerBoard, LatencyMonitor
from repro.remote.retry import RetryPolicy
from repro.remote.store import RemoteStore
from repro.remote.transport import LatencyModel, Transport
from repro.runtime.dispatch import RunResult, dispatch
from repro.runtime.session import QuerySession, QuerySpec
from repro.shedding.detector import OverloadDetector
from repro.shedding.policy import SHED_NONE, SHED_RUNS, make_shedding_policy
from repro.shedding.shedder import LoadShedder
from repro.sim.clock import VirtualClock
from repro.sim.rng import make_rng, spawn
from repro.sim.scheduler import FutureScheduler
from repro.strategies import make_strategy
from repro.strategies.base import FetchStrategy, RuntimeContext
from repro.utility.model import UtilityModel
from repro.utility.noise import NoiseModel
from repro.utility.rates import RateEstimator

if TYPE_CHECKING:  # imported lazily at runtime (layering: runtime < core)
    from repro.core.config import EiresConfig

__all__ = ["RuntimeBuilder", "Runtime", "SharedPlane", "CACHE_AUTO", "CACHE_ALWAYS"]

# Whether build() materialises the cache only when some session wants one
# (single-query behaviour) or unconditionally (multi-query: the shared
# cache exists even if every registered strategy happens to run cacheless).
CACHE_AUTO = "auto"
CACHE_ALWAYS = "always"


def _default_config() -> "EiresConfig":
    from repro.core.config import EiresConfig

    return EiresConfig()


class SharedPlane:
    """The substrate one or more runtimes share: clock, metrics, remote plane.

    A plain :meth:`RuntimeBuilder.build` constructs a private plane; the
    fleet layer (:mod:`repro.serving`) builds *one* plane and threads it
    through every shard's ``build(plane=...)``, so all shards share the
    virtual clock, the metrics registry, and the remote-data plane
    (transport + batching + cache) — batched fetches and cached keys then
    amortize across tenants while per-shard sessions stay isolated.
    """

    def __init__(
        self,
        config: "EiresConfig",
        tracer: Tracer,
        clock: VirtualClock,
        metrics: MetricsRegistry,
        rng,
        monitor: LatencyMonitor,
        transport: Transport,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.clock = clock
        self.metrics = metrics
        self.rng = rng
        self.monitor = monitor
        self.transport = transport
        # The shared cache, created lazily by the first build that wants
        # one; its cost-based utility function reads ``runtimes`` live.
        self.cache: Cache | None = None
        #: every Runtime assembled on this plane, in build order.
        self.runtimes: list["Runtime"] = []
        self._observability_bound = False

    def bind_observability(self) -> None:
        """Bind the transport's counters and trace bus exactly once.

        Every shard build calls this at the same assembly point; only the
        first call binds, so a shared transport is never rebound (see
        :meth:`repro.remote.transport.Transport.bind_observability`).
        """
        if not self._observability_bound:
            self.transport.bind_observability(self.metrics, self.tracer)
            self._observability_bound = True

    def ensure_cache(self, policy: str, capacity: int) -> Cache:
        """The plane-wide cache, created on first demand."""
        from repro.core.config import CACHE_COST, CACHE_LRU

        if self.cache is None:
            if policy == CACHE_LRU:
                self.cache = LRUCache(capacity)
            elif policy == CACHE_COST:
                self.cache = CostBasedCache(capacity, utility_fn=self.shared_utility)
            else:
                raise ValueError(f"unknown cache policy {policy!r}")
            self.cache.bind_observability(self.metrics, self.tracer)
        return self.cache

    def shared_utility(self, key: DataKey) -> float:
        """Priority-weighted utility summed over every runtime on the plane."""
        return sum(runtime.shared_utility(key) for runtime in self.runtimes)


class RuntimeBuilder:
    """Assembles a :class:`Runtime` from an ``EiresConfig``.

    Usage::

        runtime = (
            RuntimeBuilder(store, UniformLatency(10, 100), config=config)
            .add_query(q1, strategy="Hybrid", priority=2.0)
            .add_query(q2, strategy="LzEval")
            .build()
        )
        results = runtime.run(stream)   # {query_name: RunResult}
    """

    def __init__(
        self,
        store: RemoteStore,
        latency_model: LatencyModel,
        config: "EiresConfig | None" = None,
        tracer: Tracer | None = None,
        cache_mode: str = CACHE_AUTO,
    ) -> None:
        if cache_mode not in (CACHE_AUTO, CACHE_ALWAYS):
            raise ValueError(f"unknown cache mode {cache_mode!r}")
        self.store = store
        self.latency_model = latency_model
        self.config = config if config is not None else _default_config()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cache_mode = cache_mode
        self._specs: list[QuerySpec] = []

    def add_query(
        self,
        query: Query,
        strategy: str | FetchStrategy = "Hybrid",
        priority: float = 1.0,
        backend: str = "automaton",
    ) -> "RuntimeBuilder":
        """Register a query; chainable."""
        return self.add_spec(QuerySpec(query, priority=priority, strategy=strategy,
                                       backend=backend))

    def add_spec(self, spec: QuerySpec) -> "RuntimeBuilder":
        self._specs.append(spec)
        return self

    def build_plane(self) -> SharedPlane:
        """Construct the shared substrate (one per deployment).

        The construction order here — clock, metrics, RNG tree, monitor,
        fault model, retry policy, breakers, transport — is load-bearing:
        the RNG spawns happen in a fixed sequence so every build draws the
        exact random streams the pre-plane builder did.
        """
        config = self.config
        tracer = self.tracer
        clock = VirtualClock()
        metrics = MetricsRegistry(histogram_qs=config.histogram_percentiles)
        rng = make_rng(config.seed)
        monitor = LatencyMonitor()
        # The fault rng is a *separate* stream spawned after the transport's:
        # with fault_profile="none" no fault draws happen at all, so latency
        # samples are byte-identical to a build without the fault machinery.
        fault_model = make_fault_model(config.fault_profile)
        retry_policy = RetryPolicy(
            max_attempts=config.retry_max_attempts,
            backoff_base=config.retry_backoff_base,
            backoff_factor=config.retry_backoff_factor,
            jitter=config.retry_jitter,
            attempt_timeout=config.retry_attempt_timeout,
            deadline=config.retry_deadline,
        )
        breakers = (
            BreakerBoard(
                window_size=config.breaker_window,
                failure_threshold=config.breaker_failure_threshold,
                min_samples=config.breaker_min_samples,
                cooldown=config.breaker_cooldown,
                tracer=tracer,
            )
            if config.breaker_enabled
            else None
        )
        transport = Transport(
            self.store,
            self.latency_model,
            spawn(rng, "transport"),
            monitor,
            fault_model=fault_model,
            fault_rng=spawn(rng, "faults"),
            retry_policy=retry_policy,
            breakers=breakers,
            batch_policy=BatchPolicy(
                window=config.batch_window,
                max_keys=config.batch_max_keys,
                fixed_latency=config.batch_fixed_latency,
                per_key_latency=config.batch_per_key_latency,
            ),
        )
        return SharedPlane(config, tracer, clock, metrics, rng, monitor, transport)

    def build(self, plane: SharedPlane | None = None) -> "Runtime":
        """Assemble the substrate and one session per registered query.

        ``plane`` injects an existing :class:`SharedPlane` (the fleet layer
        builds one runtime per shard on a single plane); by default each
        build gets a private plane and behaves exactly as it always did.
        """
        if not self._specs:
            raise ValueError("at least one query is required")
        names = [spec.query.name for spec in self._specs]
        if len(set(names)) != len(names):
            raise ValueError(f"query names must be unique: {names}")

        config = self.config
        tracer = self.tracer
        if plane is None:
            plane = self.build_plane()
        transport = plane.transport
        transport.attach_consumer()

        runtime = Runtime(
            config=config,
            clock=plane.clock,
            metrics=plane.metrics,
            tracer=tracer,
            monitor=plane.monitor,
            transport=transport,
        )
        plane.runtimes.append(runtime)

        specs = sorted(self._specs, key=lambda spec: -spec.priority)
        strategies = [
            spec.strategy_instance if spec.strategy_instance is not None
            else make_strategy(spec.strategy_name)
            for spec in specs
        ]
        if len(specs) == 1 and tracer.enabled and not tracer.track:
            # Default the trace track to the strategy so multi-strategy
            # comparisons land on separate rows in the Chrome viewer.
            tracer.track = strategies[0].name
        plane.bind_observability()
        if tracer.enabled:
            # Latency-attribution spans ride the trace bus: a span tracker
            # exists exactly when tracing does, so untraced runs keep their
            # one-``is None``-check hot path.
            for strategy in strategies:
                strategy.spans = SpanTracker()

        # The shared cache closes over the plane's runtime list, whose
        # sessions are populated below — the cost-based utility function
        # reads it live.
        want_cache = self.cache_mode == CACHE_ALWAYS or any(
            strategy.uses_cache for strategy in strategies
        )
        cache = (
            plane.ensure_cache(config.cache_policy, config.cache_capacity)
            if want_cache
            else None
        )
        runtime.cache = cache

        noise = NoiseModel(config.noise_ratio, seed=config.seed)
        runtime.noise = noise
        if config.has_slo:
            # Built before the sessions so an slo_in_detector build can hand
            # the plane to each session's OverloadDetector.
            runtime.slo = SloPlane(
                SloSpec(
                    latency_bound=config.slo_latency_bound,
                    recall_floor=config.slo_recall_floor,
                    fetch_budget=config.slo_fetch_budget,
                ),
                plane.metrics,
            )
        scope_sessions = len(specs) > 1
        for spec, strategy in zip(specs, strategies):
            runtime.sessions.append(
                self._build_session(runtime, spec, strategy, scoped=scope_sessions)
            )
        if runtime.slo is not None:
            # The burns read live totals through closures: upward imports
            # stay out of repro.obs, and the plane sees every session.
            runtime.slo.bind_sources(
                wire_requests=lambda: transport.wire_requests,
                events_shed=lambda: sum(
                    session.shedder.stats["events_dropped"]
                    for session in runtime.sessions
                    if session.shedder is not None
                ),
            )
        return runtime

    def _build_session(
        self,
        runtime: "Runtime",
        spec: QuerySpec,
        strategy: FetchStrategy,
        scoped: bool,
    ) -> QuerySession:
        """One query's engine/strategy/utility around the shared substrate."""
        config = self.config
        automaton = compile_query(spec.query)
        utility = UtilityModel(automaton, self.store, runtime.monitor, noise=runtime.noise)
        rates = RateEstimator()
        # Multi-query sessions get their own metric namespace so fetch.*
        # counters do not collide on the shared registry; a spec-level scope
        # (the fleet layer's ``tenant.<id>.query.<name>``) wins outright.
        if spec.scope is not None:
            session_metrics = runtime.metrics.scoped(spec.scope)
        elif scoped:
            session_metrics = runtime.metrics.scoped(f"query.{spec.query.name}")
        else:
            session_metrics = runtime.metrics
        strategy.attach(
            RuntimeContext(
                automaton=automaton,
                clock=runtime.clock,
                transport=runtime.transport,
                cache=runtime.cache if strategy.uses_cache else None,
                utility=utility,
                rates=rates,
                scheduler=FutureScheduler(),  # per query: payloads are site-specific
                history=HitHistory(
                    miss_threshold=config.history_miss_threshold,
                    reset_after=config.history_reset_after,
                ),
                noise=runtime.noise,
                omega_fetch=config.omega_fetch,
                ell_pm=config.cost_model.per_guard_cost,
                lookahead_enabled=config.lookahead_enabled,
                prefetch_gate_enabled=config.prefetch_gate_enabled,
                lazy_gate_enabled=config.lazy_gate_enabled,
                utility_tick_interval=config.utility_tick_interval,
                failure_mode=config.failure_mode,
                stale_serve_enabled=config.stale_serve_enabled,
                metrics=session_metrics,
                tracer=runtime.tracer,
            )
        )
        # The one place an engine is chosen and built (analysis rule A6):
        # the spec's backend name resolves through the registry, its declared
        # capabilities are checked against everything this config asks of it
        # — selection policy, any shedding surface (a shedding policy or the
        # max_partial_matches run cap), per-run obligation records for the
        # run-utility score — and only then is the engine constructed.
        backend_cls = get_backend(spec.backend)
        backend_cls.require(
            policy=config.policy,
            shedding=(
                config.shed_policy != SHED_NONE
                or config.max_partial_matches is not None
            ),
            obligations=config.shed_policy == SHED_RUNS,
        )
        engine = backend_cls.build(
            automaton,
            runtime.clock,
            cost_model=config.cost_model,
            policy=config.policy,
            max_partial_matches=config.max_partial_matches,
        )
        session_metrics.annotate("engine.backend", spec.backend)
        strategy.bind_engine(engine)
        shedder = self._build_shedder(runtime, spec, automaton, session_metrics)
        return QuerySession(spec, automaton, engine, strategy, utility, rates,
                            shedder=shedder)

    def _build_shedder(
        self,
        runtime: "Runtime",
        spec: QuerySpec,
        automaton,
        session_metrics,
    ) -> LoadShedder | None:
        """The session's overload-control unit, or ``None`` for policy "none".

        The sole construction site for the shedding plane (analysis rule A5):
        with the default policy no detector, policy, or shedder object exists
        at all, so the build is byte-identical to one predating the plane.
        """
        config = self.config
        if config.shed_policy == SHED_NONE:
            return None
        # Backends lacking the shedding surface were already refused by the
        # capability check in _build_session.  A per-spec run budget (the
        # fleet's tenant quota) overrides the config-wide one.
        run_budget = spec.run_budget if spec.run_budget is not None else config.run_budget
        detector = OverloadDetector(
            latency_bound=config.latency_bound,
            run_budget=run_budget,
            slo=runtime.slo if config.slo_in_detector else None,
        )
        policy = make_shedding_policy(
            config.shed_policy,
            automaton=automaton,
            omega=config.omega_shed,
            run_budget=run_budget,
            event_threshold=config.shed_event_threshold,
        )
        return LoadShedder(
            detector,
            policy,
            runtime.clock,
            metrics=session_metrics,
            tracer=runtime.tracer,
            label=spec.query.name,
        )


class Runtime:
    """The assembled substrate plus its query sessions.

    Everything the dispatch loop and the facades need lives here: the
    shared clock/transport/cache/tracer/metrics, and one
    :class:`~repro.runtime.session.QuerySession` per query in descending
    priority order.
    """

    def __init__(
        self,
        config: "EiresConfig",
        clock: VirtualClock,
        metrics: MetricsRegistry,
        tracer: Tracer,
        monitor: LatencyMonitor,
        transport: Transport,
    ) -> None:
        self.config = config
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self.monitor = monitor
        self.transport = transport
        self.cache: Cache | None = None
        self.noise: NoiseModel | None = None
        self.sessions: list[QuerySession] = []
        # SLO/health plane; None unless the config declares an objective
        # (the default build carries no slo.* metrics at all).
        self.slo: SloPlane | None = None

    def session(self, name: str) -> QuerySession:
        for session in self.sessions:
            if session.name == name:
                return session
        raise KeyError(f"no session for query {name!r}")

    def shared_utility(self, key: DataKey) -> float:
        """Priority-weighted sum of the per-query utilities (Eq. 3 weights)."""
        omega = self.config.omega_cache
        return sum(
            session.priority * session.utility.value(key, omega)
            for session in self.sessions
        )

    def run(self, stream: Stream, smoothing_window: int = 1) -> dict[str, RunResult]:
        """Replay ``stream`` through every session; results keyed by query name."""
        # One fresh sampler per replay: rows cover exactly this stream.
        sampler = (
            SeriesSampler(self.metrics, self.config.series_interval)
            if self.config.series_interval > 0
            else None
        )
        results = dispatch(
            self.clock,
            self.sessions,
            stream,
            tracer=self.tracer,
            smoothing_window=smoothing_window,
            shared_cache=self.cache,
            report_percentiles=self.config.report_percentiles,
            sampler=sampler,
            slo=self.slo,
        )
        return {
            session.name: result for session, result in zip(self.sessions, results)
        }

    def __repr__(self) -> str:
        names = ", ".join(session.name for session in self.sessions)
        return f"Runtime([{names}], cache={self.config.cache_policy})"

"""The event-dispatch loop: stream -> sessions -> engines -> metrics.

This is the outer loop of Alg. 1, generalised to N query sessions sharing
one virtual clock — the *only* stream-replay loop in the system.  For each
input event the loop

1. idles the shared clock forward to the event's arrival time (if an engine
   is already behind — e.g. it stalled on a blocking fetch — the event has
   been queueing and its waiting time will show up in match latency);
2. for every session in priority order, lets the strategy deliver due async
   responses into the cache, fire offset-timed prefetches, and refresh its
   estimates, then runs the engine's ``f_Q`` step;
3. records matches, per-session latency, and shared throughput.

After the last event every session's strategy is drained and its engine
flushed, and one :class:`RunResult` per session is assembled — including
transport stats derived from :data:`~repro.remote.transport.TRANSPORT_COUNTER_KEYS`
and a full metrics-registry snapshot, identically for single- and
multi-query runs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.cache.base import Cache
from repro.events.stream import Stream
from repro.metrics.latency import LatencyCollector
from repro.metrics.throughput import ThroughputMeter
from repro.obs.spans import SPAN_RECORD_NAME
from repro.obs.trace import CAT_EVENT, CAT_MATCH, CAT_SPAN, NULL_TRACER, Tracer
from repro.remote.transport import TRANSPORT_COUNTER_KEYS
from repro.runtime.session import QuerySession
from repro.sim.clock import VirtualClock

__all__ = [
    "RunResult",
    "dispatch",
    "deliver_event",
    "flush_transports",
    "finish_sessions",
    "collect_results",
    "THROUGHPUT_RUN",
    "THROUGHPUT_SHARED",
]

# How a result's throughput meter relates to the run that produced it:
# "run"    — the meter covers exactly this result's replay (single query);
# "shared" — the meter covers the whole multi-query replay, so every
#            per-query result of that replay reports the *same* meter.
THROUGHPUT_RUN = "run"
THROUGHPUT_SHARED = "shared"


class RunResult:
    """Everything measured during one stream replay."""

    def __init__(
        self,
        strategy_name: str,
        matches: list,
        latency: LatencyCollector,
        throughput: ThroughputMeter,
        engine_stats: dict[str, Any],
        strategy_stats: dict[str, Any],
        cache_stats: dict[str, Any] | None,
        transport_stats: dict[str, Any],
        duration_us: float,
        metrics: dict[str, Any] | None = None,
        throughput_scope: str = THROUGHPUT_RUN,
        shed_stats: dict[str, Any] | None = None,
        series: list[dict[str, Any]] | None = None,
        backend: str = "reference",
    ) -> None:
        self.strategy_name = strategy_name
        self.matches = matches
        self.latency = latency
        self.throughput = throughput
        self.engine_stats = engine_stats
        self.strategy_stats = strategy_stats
        self.cache_stats = cache_stats
        self.transport_stats = transport_stats
        self.duration_us = duration_us
        # Full registry snapshot when the run was assembled with one; not
        # part of summary() so observability cannot change reported results.
        self.metrics = metrics
        # "shared" marks a meter spanning a whole multi-query replay (the
        # summary carries the scope so the sharing is explicit, not implied).
        self.throughput_scope = throughput_scope
        # Shedding counters; None when the session carried no shedding plane,
        # keeping default summaries free of shed.* columns.
        self.shed_stats = shed_stats
        # Virtual-time series samples (shared across the replay's sessions);
        # like ``metrics``, not part of summary() — sampling cannot change
        # reported results.
        self.series = series
        # Canonical name of the evaluation backend that produced the run;
        # deliberately not part of summary() (whose fields feed the bench
        # baselines) — reporting surfaces add it explicitly.
        self.backend = backend

    @property
    def match_count(self) -> int:
        return len(self.matches)

    def match_signatures(self) -> set[tuple]:
        """Canonical match identities, for cross-strategy equivalence checks."""
        return {match.signature() for match in self.matches}

    def latency_percentiles(self) -> dict[float, float]:
        return self.latency.percentiles()

    def summary(self) -> dict[str, Any]:
        """Flat summary used by reports and EXPERIMENTS.md tables."""
        data: dict[str, Any] = {
            "strategy": self.strategy_name,
            "matches": self.match_count,
            "throughput_eps": round(self.throughput.events_per_second(), 1),
        }
        if self.throughput_scope != THROUGHPUT_RUN:
            data["throughput_scope"] = self.throughput_scope
        for q, value in sorted(self.latency_percentiles().items()):
            data[f"p{int(q)}"] = round(value, 2)
        # Stats dicts come from the as_dict() facades, whose key order IS the
        # declared report-column order of the counter-key tables — sorting
        # here would alphabetise the summary columns.
        data.update({f"engine.{k}": v for k, v in self.engine_stats.items()})  # eires: allow[D3] engine stats report order
        data.update({f"fetch.{k}": v for k, v in self.strategy_stats.items()})  # eires: allow[D3] STRATEGY_COUNTER_KEYS report order
        if self.cache_stats is not None:
            data.update({f"cache.{k}": v for k, v in self.cache_stats.items()})  # eires: allow[D3] CACHE_COUNTER_KEYS report order
        data.update({f"transport.{k}": v for k, v in self.transport_stats.items()})  # eires: allow[D3] TRANSPORT_COUNTER_KEYS report order
        if self.shed_stats is not None:
            data.update({f"shed.{k}": v for k, v in self.shed_stats.items()})  # eires: allow[D3] SHED_COUNTER_KEYS report order
        return data

    def __repr__(self) -> str:
        p = self.latency_percentiles()
        return (
            f"RunResult({self.strategy_name}: {self.match_count} matches, "
            f"p50={p[50]:.1f}us, p95={p[95]:.1f}us, "
            f"{self.throughput.events_per_second():.0f} ev/s)"
        )


def deliver_event(
    session: QuerySession,
    event,
    index: int,
    clock: VirtualClock,
    tracer: Tracer = NULL_TRACER,
    multi: bool = False,
    slo=None,
) -> None:
    """Deliver one event to one session: substrate work, shedding, ``f_Q``.

    The per-session body of the dispatch loop, factored out so higher-level
    replay loops (the multi-tenant fleet in :mod:`repro.serving`) drive the
    exact same code path event for event.  ``multi`` controls whether trace
    records carry a ``query`` field disambiguating the session.
    """
    strategy = session.strategy
    # The span tracker's pickup time is where queueing attribution
    # ends: everything before it was the event waiting its turn.
    spans = strategy.spans
    if spans is not None:
        spans.begin_event(clock.now)
    strategy.on_event_start(event, index)
    # Overload control (when configured): input-event shedding skips
    # the NFA step entirely; run shedding prunes the population the
    # step just grew.  The substrate work above (async deliveries,
    # scheduled prefetches, estimator refresh) always happens.
    shedder = session.shedder
    if shedder is not None:
        before = clock.now
        dropped = shedder.before_event(event, session.engine)
        if spans is not None:
            spans.add_shed_stall(clock.now - before)
        if dropped:
            return
    step_matches = session.engine.process_event(event, strategy)
    strategy.on_event_end(event, step_matches)
    if shedder is not None:
        shedder.after_event(event, session.engine, strategy)
    for match in step_matches:
        session.latency.record(match.latency)
        if slo is not None:
            slo.observe_match(match.latency, clock.now)
        if tracer.enabled:
            fields: dict[str, Any] = {
                "latency": match.latency,
                "fetch_wait": match.fetch_wait,
                "events": [
                    [binding, bound.seq]
                    for binding, bound in sorted(match.events.items())
                ],
            }
            if multi:
                fields["query"] = session.name
            tracer.emit(CAT_MATCH, "emit", match.detected_at, **fields)
            if match.span is not None:
                span_fields: dict[str, Any] = dict(match.span)
                if multi:
                    span_fields["query"] = session.name
                tracer.emit(
                    CAT_SPAN,
                    SPAN_RECORD_NAME,
                    match.last_event_t,
                    dur=match.latency,
                    latency=match.latency,
                    **span_fields,
                )
    session.matches.extend(step_matches)


def flush_transports(
    sessions: Sequence[QuerySession],
    clock: VirtualClock,
    flushed: set[int] | None = None,
) -> set[int]:
    """Close any batch window still open when the stream ends.

    Each transport is flushed exactly once — sessions may share one — so
    the final deliveries and counters are deterministic regardless of where
    the stream was cut.  ``flushed`` lets a caller span the dedup set over
    several session groups (the fleet's shards share one transport).
    """
    if flushed is None:
        flushed = set()
    for session in sessions:
        ctx = session.strategy.ctx
        if ctx is None or ctx.transport is None:
            continue
        if id(ctx.transport) in flushed:
            continue
        flushed.add(id(ctx.transport))
        ctx.transport.flush_batches(clock.now)
    return flushed


def finish_sessions(sessions: Sequence[QuerySession]) -> None:
    """Drain every strategy and flush every engine after the last event."""
    for session in sessions:
        session.strategy.end_of_stream()
        session.engine.flush(session.strategy)


def collect_results(
    sessions: Sequence[QuerySession],
    throughput: ThroughputMeter,
    duration_us: float,
    scope: str,
    shared_cache: Cache | None = None,
    series_rows: list[dict[str, Any]] | None = None,
) -> list[RunResult]:
    """One :class:`RunResult` per session, in session order."""
    results = []
    for session in sessions:
        ctx = session.strategy.ctx
        cache = ctx.cache if ctx is not None else None
        if cache is None:
            cache = shared_cache
        transport = ctx.transport if ctx is not None else None
        engine_stats = session.engine.stats.as_dict()
        engine_stats.update(session.strategy.drops.as_dict())
        results.append(
            RunResult(
                strategy_name=session.strategy.name,
                matches=session.matches,
                latency=session.latency,
                throughput=throughput,
                engine_stats=engine_stats,
                strategy_stats=session.strategy.stats.as_dict(),
                cache_stats=cache.stats.as_dict() if cache is not None else None,
                transport_stats={
                    key: getattr(transport, key) for key in TRANSPORT_COUNTER_KEYS
                }
                if transport is not None
                else {},
                duration_us=duration_us,
                metrics=ctx.metrics.snapshot()
                if ctx is not None and ctx.metrics is not None
                else None,
                throughput_scope=scope,
                shed_stats=session.shedder.stats.as_dict()
                if session.shedder is not None
                else None,
                series=series_rows,
                backend=session.spec.backend if session.spec is not None else "reference",
            )
        )
    return results


def dispatch(
    clock: VirtualClock,
    sessions: Sequence[QuerySession],
    stream: Stream,
    tracer: Tracer = NULL_TRACER,
    smoothing_window: int = 1,
    shared_cache: Cache | None = None,
    report_percentiles: Sequence[float] | None = None,
    sampler=None,
    slo=None,
) -> list[RunResult]:
    """Replay ``stream`` through every session; one :class:`RunResult` each.

    Sessions are driven in the given order for every event (the builder
    sorts them by descending priority).  With a single session this loop is
    byte-identical to the historical ``Pipeline.run``; with several, the
    shared clock makes cross-query interference (one query's stall delaying
    another's detection) directly observable, just like in a real shared
    deployment.  ``shared_cache`` supplies cache statistics for sessions
    whose own strategy runs cacheless but whose runtime still maintains the
    shared cache (multi-query mode).

    ``report_percentiles`` configures the latency quantile surface
    (``EiresConfig.report_percentiles``); ``sampler`` is an optional
    :class:`~repro.obs.series.SeriesSampler` snapshotting the metrics
    registry on its virtual-time cadence; ``slo`` is an optional
    :class:`~repro.obs.slo.SloPlane` fed every event and match.  All three
    only *read* model state — they change no run results.
    """
    multi = len(sessions) > 1
    for session in sessions:
        session.begin_run(smoothing_window=smoothing_window, qs=report_percentiles)
    throughput = ThroughputMeter()
    start = clock.now

    for index, event in enumerate(stream):
        # The engines pick the event up at arrival or when the shared clock
        # frees up, whichever is later — queueing delay is real latency.
        clock.advance_to(event.t)
        if tracer.enabled:
            tracer.emit(CAT_EVENT, "arrival", event.t, seq_no=event.seq, picked_up=clock.now)
        if slo is not None:
            slo.observe_event(clock.now)
        for session in sessions:
            deliver_event(session, event, index, clock, tracer, multi, slo)
        throughput.record_event(clock.now)
        if sampler is not None and sampler.due(clock.now):
            # Gauge refresh before the snapshot, so sampled slo.* values
            # reflect the boundary being recorded.
            if slo is not None:
                slo.evaluate(clock.now)
            sampler.maybe_sample(clock.now)

    flush_transports(sessions, clock)
    finish_sessions(sessions)

    # Final health read: the end-of-run burns land on the slo.* gauges
    # before the per-result metrics snapshots (and the final series row).
    if slo is not None:
        slo.evaluate(clock.now)
    if sampler is not None:
        sampler.finalize(clock.now)
    series_rows = sampler.rows() if sampler is not None else None

    scope = THROUGHPUT_SHARED if multi else THROUGHPUT_RUN
    return collect_results(
        sessions,
        throughput,
        clock.now - start,
        scope,
        shared_cache=shared_cache,
        series_rows=series_rows,
    )

"""Command-line interface: compare strategies, trace runs, serve fleets.

Usage::

    python -m repro.cli compare --workload q1 --policy greedy --cache cost
    python -m repro.cli compare --workload cluster --strategies BL1 Hybrid
    python -m repro.cli compare --workload q1 --json
    python -m repro.cli trace --workload q1 --strategy Hybrid \\
        --trace-out q1.trace.json --metrics-out q1.metrics.json
    python -m repro.cli report --workload q1 --strategy Hybrid \\
        --slo-latency-bound 400 --series-interval 500 --series-out q1.series.jsonl
    python -m repro.cli serve --workload q1 --tenants 4 --shards 2 \\
        --rate-limit 20000 --burst 64
    python -m repro.cli describe --workload fraud
    python -m repro.cli compare --workload q1 --config run.toml

``compare`` replays a named workload under the selected strategies and
prints the paper-style percentile table (``--json`` emits the rows as JSON
instead; ``--trace-out`` captures all runs into one trace file, one track
per strategy); ``trace`` replays one strategy with full lifecycle tracing
and decision provenance and verifies the trace explains the run; ``report``
runs one traced strategy and renders a run health report — per-match
latency attribution, SLO burn rates, metric series, provenance replay —
with optional folded-flamegraph and series JSONL exports; ``serve`` runs a
multi-tenant fleet (one tenant per copy of the workload's query) across
worker shards sharing one remote-data plane; ``describe`` prints the
compiled evaluation automaton (states, transitions, remote sites) of the
workload's query.

Every flag family lives in its own argument group (engine, batching,
shedding, SLO, serving, observability), and ``--config FILE`` loads the
same knobs config-first from a TOML file of
:class:`~repro.core.config.EiresConfig` field names — explicit CLI flags
always win over the file.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import tomllib
from typing import Any, Callable

from repro.backends import backend_unavailable_reason, resolve_backend
from repro.bench.harness import ALL_STRATEGIES, ExperimentResult, run_strategy
from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.core.framework import EIRES
from repro.engine.engine import GREEDY, NON_GREEDY
from repro.metrics.reporting import format_fault_summary, format_health_report
from repro.nfa.compiler import compile_query
from repro.obs.export import (
    write_chrome_trace,
    write_folded,
    write_jsonl,
    write_metrics_snapshot,
)
from repro.obs.provenance import replay_trace
from repro.obs.series import write_series_jsonl
from repro.obs.spans import aggregate_spans
from repro.obs.trace import MemorySink, Tracer
from repro.remote.transport import TRANSPORT_BATCH_KEYS_METRIC
from repro.remote.faults import FAULT_PROFILES
from repro.serving import PLACE_ROUND_ROBIN, PLACEMENTS, FleetBuilder, TenantSpec
from repro.shedding.policy import SHED_NONE, SHED_POLICIES
from repro.strategies.base import FAIL_CLOSED, FAIL_OPEN
from repro.workloads.base import Workload
from repro.workloads.bursty import BurstyConfig, bursty_workload
from repro.workloads.bushfire import BushfireConfig, bushfire_workload
from repro.workloads.cluster import ClusterConfig, cluster_workload
from repro.workloads.fraud import FraudConfig, fraud_workload
from repro.workloads.synthetic import SyntheticConfig, q1_workload, q2_workload

__all__ = ["main", "WORKLOADS"]


def _q1(events: int) -> Workload:
    return q1_workload(SyntheticConfig(n_events=events, id_domain=20, window_events=400))


def _q2(events: int) -> Workload:
    return q2_workload(SyntheticConfig(n_events=events, id_domain=40, window_events=400))


WORKLOADS: dict[str, Callable[[int], Workload]] = {
    "q1": _q1,
    "q2": _q2,
    "bursty": lambda events: bursty_workload(BurstyConfig(n_events=events)),
    "fraud": lambda events: fraud_workload(FraudConfig(n_events=events)),
    "bushfire": lambda events: bushfire_workload(BushfireConfig(n_events=events)),
    "cluster": lambda events: cluster_workload(ClusterConfig(n_tasks=max(events // 6, 1))),
}


#: TOML keys (``EiresConfig`` field names) whose CLI flag spells the dest
#: differently; every other accepted key maps to the identical dest.
CONFIG_DEST_MAP = {
    "cache_policy": "cache",
    "cache_capacity": "capacity",
    "retry_max_attempts": "retry_attempts",
}

#: Every key a ``--config`` TOML file may set: the ``EiresConfig`` fields
#: the CLI exposes as flags.  Keys apply wherever the chosen subcommand
#: supports the corresponding flag; explicit CLI flags always win.
CONFIG_KEYS = (
    "policy",
    "cache_policy",
    "cache_capacity",
    "fault_profile",
    "failure_mode",
    "retry_max_attempts",
    "batch_window",
    "batch_max_keys",
    "batch_fixed_latency",
    "batch_per_key_latency",
    "shed_policy",
    "latency_bound",
    "run_budget",
    "slo_latency_bound",
    "slo_recall_floor",
    "slo_fetch_budget",
    "slo_in_detector",
    "series_interval",
)


def _config_defaults(argv: list[str]) -> dict[str, Any]:
    """Pre-scan ``argv`` for ``--config FILE`` and load it as flag defaults.

    Returns argparse defaults (TOML keys mapped through
    :data:`CONFIG_DEST_MAP`); parsing then layers explicit flags on top, so
    precedence is built-in default < config file < command line.  Unknown
    keys are a clean exit 2 — a typoed knob must not silently fall back.
    """
    path = None
    for index, token in enumerate(argv):
        if token == "--config" and index + 1 < len(argv):
            path = argv[index + 1]
        elif token.startswith("--config="):
            path = token.split("=", 1)[1]
    if path is None:
        return {}
    try:
        with open(path, "rb") as handle:
            loaded = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        print(f"error: cannot load --config {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    defaults: dict[str, Any] = {}
    for key, value in loaded.items():
        if key not in CONFIG_KEYS:
            print(
                f"error: unknown --config key {key!r} in {path}; "
                f"accepted keys: {', '.join(CONFIG_KEYS)}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        defaults[CONFIG_DEST_MAP.get(key, key)] = value
    return defaults


def _build_parser(config_defaults: dict[str, Any] | None = None) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare fetching strategies")
    engine = _add_engine_args(compare)
    engine.add_argument("--strategies", nargs="+", default=list(ALL_STRATEGIES),
                        choices=ALL_STRATEGIES, metavar="STRATEGY")
    engine.add_argument("--failure-mode", choices=(FAIL_CLOSED, FAIL_OPEN),
                        default=FAIL_CLOSED,
                        help="how predicates treat terminally unavailable data")
    engine.add_argument("--retry-attempts", type=int, default=3,
                        help="max fetch attempts incl. the first (default: 3)")
    _add_backend_arg(compare)
    compare.add_argument("--json", action="store_true",
                         help="emit the per-strategy summary rows as JSON")
    _add_batching_args(compare)
    _add_shedding_args(compare)
    _add_observability_args(compare)

    trace = subparsers.add_parser(
        "trace", help="replay one strategy with full lifecycle tracing")
    _add_engine_args(trace, strategy=True)
    _add_backend_arg(trace)
    _add_batching_args(trace)
    _add_shedding_args(trace)
    _add_observability_args(trace)

    report = subparsers.add_parser(
        "report", help="run health report: latency attribution, SLOs, series")
    engine = _add_engine_args(report, strategy=True)
    engine.add_argument("--series-interval", type=float, default=0.0, metavar="US",
                        help="metric sampling cadence in virtual us "
                             "(0 disables series sampling; default: 0)")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="also write the health report text to PATH")
    report.add_argument("--folded-out", default=None, metavar="PATH",
                        help="write latency-attribution spans as flamegraph "
                             "folded stacks to PATH")
    report.add_argument("--series-out", default=None, metavar="PATH",
                        help="write the sampled metric series as JSONL to PATH "
                             "(needs --series-interval)")
    _add_backend_arg(report)
    _add_slo_args(report)
    _add_batching_args(report)
    _add_shedding_args(report)
    _add_observability_args(report)

    serve = subparsers.add_parser(
        "serve", help="run a multi-tenant fleet over shared remote data")
    _add_engine_args(serve, strategy=True)
    _add_serving_args(serve)
    _add_backend_arg(serve)
    serve.add_argument("--json", action="store_true",
                       help="emit the fleet and per-tenant summaries as JSON")
    _add_batching_args(serve)
    _add_shedding_args(serve)
    _add_observability_args(serve)

    describe = subparsers.add_parser("describe", help="print a workload's automaton")
    describe.add_argument("--workload", choices=sorted(WORKLOADS), default="q1")

    if config_defaults:
        for sub in (compare, trace, report, serve):
            sub.set_defaults(**config_defaults)
    return parser


def _add_engine_args(
    subparser: argparse.ArgumentParser, strategy: bool = False
) -> argparse._ArgumentGroup:
    """The core evaluation knobs every run subcommand shares."""
    group = subparser.add_argument_group(
        "engine", "workload selection and core evaluation knobs")
    group.add_argument("--workload", choices=sorted(WORKLOADS), default="q1")
    group.add_argument("--events", type=int, default=6_000,
                       help="stream length (tasks x ~6 for 'cluster')")
    if strategy:
        group.add_argument("--strategy", choices=ALL_STRATEGIES, default="Hybrid")
    group.add_argument("--policy", choices=(GREEDY, NON_GREEDY), default=GREEDY)
    group.add_argument("--cache", choices=(CACHE_COST, CACHE_LRU), default=CACHE_COST)
    group.add_argument("--capacity", type=int, default=None,
                       help="cache capacity (default: the workload's recommendation)")
    group.add_argument("--fault-profile", default="none", metavar="PROFILE",
                       help="fault injection profile: one of "
                            f"{', '.join(sorted(FAULT_PROFILES))}, or a spec like "
                            "'drop:0.1' / 'drop:0.05,slow:0.1:8' (default: none)")
    group.add_argument("--config", default=None, metavar="FILE",
                       help="TOML file of EiresConfig fields loaded as flag "
                            "defaults (explicit flags win); accepted keys: "
                            f"{', '.join(CONFIG_KEYS)}")
    return group


def _add_serving_args(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group(
        "serving", "fleet shape: tenants, shards, placement, admission")
    group.add_argument("--tenants", type=int, default=2, metavar="N",
                       help="number of tenants, each running its own copy of "
                            "the workload's query (default: 2)")
    group.add_argument("--shards", type=int, default=1, metavar="N",
                       help="number of worker shards (default: 1)")
    group.add_argument("--placement", choices=PLACEMENTS, default=PLACE_ROUND_ROBIN,
                       help="tenant-to-shard placement policy "
                            f"(default: {PLACE_ROUND_ROBIN})")
    group.add_argument("--rate-limit", type=float, default=None, metavar="EPS",
                       help="per-tenant admission rate in events per virtual "
                            "second (default: unlimited)")
    group.add_argument("--burst", type=float, default=None, metavar="N",
                       help="per-tenant token-bucket burst "
                            "(default: max(1, rate limit))")


def _add_backend_arg(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group(
        "backend", "evaluation-backend selection")
    group.add_argument("--engine-backend", default="reference", metavar="NAME",
                       help="evaluation backend to run the query on "
                            "(see repro.backends.list_backends; "
                            "default: reference)")


def _resolve_backend_arg(args: argparse.Namespace) -> str:
    """Canonical backend name, or a clean exit-2 for unknown/unavailable."""
    try:
        name = resolve_backend(args.engine_backend)
        reason = backend_unavailable_reason(name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if reason is not None:
        print(f"error: backend {name!r} is unavailable: {reason}", file=sys.stderr)
        raise SystemExit(2)
    return name


def _add_batching_args(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group(
        "batching", "remote-fetch coalescing on the wire")
    group.add_argument("--batch-window", type=float, default=0.0, metavar="US",
                       help="batch coalescing window in virtual us "
                            "(0 disables batching; default: 0)")
    group.add_argument("--batch-max-keys", type=int, default=1, metavar="N",
                       help="max keys per wire request (1 disables batching; "
                            "default: 1)")
    group.add_argument("--batch-fixed-latency", type=float, default=40.0,
                       metavar="US", help="fixed per-wire-request latency "
                                          "of a batch (default: 40)")
    group.add_argument("--batch-per-key-latency", type=float, default=8.0,
                       metavar="US", help="per-key marginal latency of a "
                                          "batch (default: 8)")


def _batching_fields(args: argparse.Namespace) -> dict:
    return {
        "batch_window": args.batch_window,
        "batch_max_keys": args.batch_max_keys,
        "batch_fixed_latency": args.batch_fixed_latency,
        "batch_per_key_latency": args.batch_per_key_latency,
    }


def _add_shedding_args(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group(
        "shedding", "load shedding under overload")
    group.add_argument("--shed-policy", choices=sorted(SHED_POLICIES),
                       default=SHED_NONE,
                       help="load-shedding policy under overload "
                            "(default: none — no shedding plane at all)")
    group.add_argument("--latency-bound", type=float, default=None, metavar="US",
                       help="max tolerable queueing delay in virtual us "
                            "before shedding kicks in")
    group.add_argument("--run-budget", type=int, default=None, metavar="N",
                       help="max live partial matches per query before "
                            "shedding kicks in")


def _shedding_fields(args: argparse.Namespace) -> dict:
    return {
        "shed_policy": args.shed_policy,
        "latency_bound": args.latency_bound,
        "run_budget": args.run_budget,
    }


def _add_slo_args(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group(
        "slo", "service-level objectives and burn rates")
    group.add_argument("--slo-latency-bound", type=float, default=None, metavar="US",
                       help="SLO: p95 detection latency must stay below this "
                            "many virtual us")
    group.add_argument("--slo-recall-floor", type=float, default=None,
                       metavar="FRACTION",
                       help="SLO: fraction of events that must survive "
                            "shedding (e.g. 0.95)")
    group.add_argument("--slo-fetch-budget", type=float, default=None,
                       metavar="RPS",
                       help="SLO: max wire requests per virtual second")
    group.add_argument("--slo-in-detector", action="store_true",
                       help="feed SLO burn rates into the shedding overload "
                            "detector (needs --shed-policy)")


def _slo_fields(args: argparse.Namespace) -> dict:
    return {
        "slo_latency_bound": args.slo_latency_bound,
        "slo_recall_floor": args.slo_recall_floor,
        "slo_fetch_budget": args.slo_fetch_budget,
        "slo_in_detector": args.slo_in_detector,
    }


def _add_observability_args(subparser: argparse.ArgumentParser) -> None:
    group = subparser.add_argument_group(
        "observability", "trace and metrics exports")
    group.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the lifecycle trace to PATH")
    group.add_argument("--trace-format", choices=("chrome", "jsonl"), default="chrome",
                       help="trace file format: Chrome trace-event JSON "
                            "(Perfetto-loadable) or raw JSON lines (default: chrome)")
    group.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write per-strategy metrics registry snapshots to PATH")


def _write_trace(records: list[dict], args: argparse.Namespace) -> None:
    if args.trace_format == "chrome":
        write_chrome_trace(records, args.trace_out)
    else:
        write_jsonl(records, args.trace_out)


def _cmd_compare(args: argparse.Namespace) -> int:
    backend = _resolve_backend_arg(args)
    workload = WORKLOADS[args.workload](args.events)
    capacity = args.capacity if args.capacity is not None else workload.notes["cache_capacity"]
    config = EiresConfig(
        policy=args.policy,
        cache_policy=args.cache,
        cache_capacity=capacity,
        fault_profile=args.fault_profile,
        failure_mode=args.failure_mode,
        retry_max_attempts=args.retry_attempts,
        **_batching_fields(args),
        **_shedding_fields(args),
    )
    sink = MemorySink() if args.trace_out is not None else None
    rows = []
    metrics: dict[str, dict] = {}
    for strategy in args.strategies:
        tracer = Tracer(sink, track=strategy) if sink is not None else None
        result = run_strategy(workload, strategy, config, tracer=tracer,
                              backend=backend)
        row = result.summary()
        row["backend"] = backend
        if result.metrics is not None:
            metrics[strategy] = result.metrics
            # Surface the batch-size distribution next to the dropped-run
            # ledger in machine-readable rows (flat keys, diffable).
            histogram = result.metrics.get(TRANSPORT_BATCH_KEYS_METRIC)
            if isinstance(histogram, dict):
                row.update({
                    f"{TRANSPORT_BATCH_KEYS_METRIC}.{key}": value
                    for key, value in histogram.items()
                })
        rows.append(row)
    if sink is not None:
        _write_trace(sink.records, args)
    if args.metrics_out is not None:
        write_metrics_snapshot(metrics, args.metrics_out)
    title = f"{args.workload} / {args.policy} / {args.cache} cache (capacity {capacity})"
    if backend != "reference":
        title += f" / backend={backend}"
    if args.fault_profile != "none":
        title += f" / faults={args.fault_profile}"
    if args.shed_policy != SHED_NONE:
        title += f" / shed={args.shed_policy}"
    experiment = ExperimentResult(title, rows)
    if args.json:
        print(json.dumps({"name": title, "rows": rows}, indent=2, default=str))
        return 0
    print(experiment.table())
    if "Hybrid" in args.strategies and len(args.strategies) > 1:
        print()
        print(experiment.comparison("p50"))
    if args.fault_profile != "none":
        print()
        print(format_fault_summary(rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    backend = _resolve_backend_arg(args)
    workload = WORKLOADS[args.workload](args.events)
    capacity = args.capacity if args.capacity is not None else workload.notes["cache_capacity"]
    config = EiresConfig(
        policy=args.policy,
        cache_policy=args.cache,
        cache_capacity=capacity,
        fault_profile=args.fault_profile,
        **_batching_fields(args),
        **_shedding_fields(args),
    )
    sink = MemorySink()
    result = run_strategy(
        workload, args.strategy, config,
        tracer=Tracer(sink, track=args.strategy), backend=backend,
    )
    replay = replay_trace(sink.records)
    if args.trace_out is not None:
        _write_trace(sink.records, args)
        print(f"trace: {len(sink.records)} records -> {args.trace_out} ({args.trace_format})")
    else:
        print(f"trace: {len(sink.records)} records (no --trace-out; not persisted)")
    if args.metrics_out is not None:
        write_metrics_snapshot({args.strategy: result.metrics}, args.metrics_out)
        print(f"metrics: -> {args.metrics_out}")
    print(
        f"provenance: {replay['checked_eq7']} Eq.7 decisions, "
        f"{replay['checked_eq8']} Eq.8 gates, "
        f"{replay['checked_shed']} shed decisions, "
        f"{replay['checked_serving']} serving decisions replayed, "
        f"{len(replay['problems'])} inconsistencies"
    )
    for problem in replay["problems"]:
        print(f"  {problem}", file=sys.stderr)
    print(
        f"{result.strategy_name}: {result.match_count} matches, "
        f"p50={result.latency_percentiles()[50]:.1f}us"
    )
    return 1 if replay["problems"] else 0


def _cmd_report(args: argparse.Namespace) -> int:
    backend = _resolve_backend_arg(args)
    workload = WORKLOADS[args.workload](args.events)
    capacity = args.capacity if args.capacity is not None else workload.notes["cache_capacity"]
    config = EiresConfig(
        policy=args.policy,
        cache_policy=args.cache,
        cache_capacity=capacity,
        fault_profile=args.fault_profile,
        series_interval=args.series_interval,
        **_slo_fields(args),
        **_batching_fields(args),
        **_shedding_fields(args),
    )
    sink = MemorySink()
    eires = EIRES(
        workload.query,
        workload.store,
        workload.latency_model,
        strategy=args.strategy,
        config=config,
        backend=backend,
        tracer=Tracer(sink, track=args.strategy),
    )
    result = eires.run(workload.stream)
    replay = replay_trace(sink.records)
    attribution = aggregate_spans(sink.records)
    slo = eires.runtime.slo
    slo_status = slo.status(eires.clock.now) if slo is not None else None
    series = result.series
    title = f"{args.workload} / {args.strategy} / {backend} run health"
    if args.fault_profile != "none":
        title += f" / faults={args.fault_profile}"
    report = format_health_report(
        title,
        result.summary(),
        attribution,
        slo_status=slo_status,
        replay=replay,
        series_samples=len(series) if series is not None else None,
    )
    print(report)
    if args.out is not None:
        with open(args.out, "w") as handle:
            handle.write(report)
            handle.write("\n")
        print(f"report: -> {args.out}")
    if args.folded_out is not None:
        stacks = write_folded(sink.records, args.folded_out)
        print(f"folded spans: {stacks} stacks -> {args.folded_out}")
    if args.series_out is not None:
        samples = write_series_jsonl(series or [], args.series_out)
        print(f"series: {samples} samples -> {args.series_out}")
    if args.trace_out is not None:
        _write_trace(sink.records, args)
        print(f"trace: {len(sink.records)} records -> {args.trace_out} ({args.trace_format})")
    if args.metrics_out is not None:
        write_metrics_snapshot({args.strategy: result.metrics}, args.metrics_out)
        print(f"metrics: -> {args.metrics_out}")
    for problem in replay["problems"]:
        print(f"  {problem}", file=sys.stderr)
    return 1 if replay["problems"] else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    backend = _resolve_backend_arg(args)
    workload = WORKLOADS[args.workload](args.events)
    capacity = args.capacity if args.capacity is not None else workload.notes["cache_capacity"]
    config = EiresConfig(
        policy=args.policy,
        cache_policy=args.cache,
        cache_capacity=capacity,
        fault_profile=args.fault_profile,
        **_batching_fields(args),
        **_shedding_fields(args),
    )
    sink = MemorySink() if args.trace_out is not None else None
    builder = FleetBuilder(
        workload.store, workload.latency_model,
        n_shards=args.shards, placement=args.placement,
        config=config, tracer=Tracer(sink) if sink is not None else None,
    )
    for index in range(args.tenants):
        # Every tenant runs its own copy of the workload's query; fleet
        # query names must be unique, so the copy is renamed per tenant.
        query = copy.copy(workload.query)
        query.name = f"{workload.query.name}_t{index}"
        builder.add_tenant(TenantSpec(
            f"tenant{index}", query,
            rate_limit=args.rate_limit, burst=args.burst,
            strategy=args.strategy, backend=backend,
        ))
    try:
        fleet = builder.build()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = fleet.dispatch(workload.stream)

    tenant_rows = []
    for tenant in sorted(result.results):
        for query_name, run in sorted(result.results[tenant].items()):
            percentiles = run.latency_percentiles()
            tenant_rows.append({
                "tenant": tenant,
                "query": query_name,
                "shard": result.placement[tenant],
                "matches": run.match_count,
                "admitted": result.admitted[tenant],
                "throttled": result.throttled[tenant],
                "p50": round(percentiles[50], 2),
                "p95": round(percentiles[95], 2),
            })
    if args.json:
        print(json.dumps(
            {"fleet": result.summary(), "tenants": tenant_rows},
            indent=2, default=str,
        ))
    else:
        summary = result.summary()
        print(
            f"fleet: {summary['n_tenants']} tenants on {summary['n_shards']} "
            f"shard(s), placement={summary['placement']}, "
            f"{summary['events']} events "
            f"(admitted {summary['admitted']}, throttled {summary['throttled']}), "
            f"skew={summary['skew']}, amortization={summary['amortization']}"
        )
        for row in tenant_rows:
            print(
                f"  {row['tenant']}/{row['query']} [shard {row['shard']}]: "
                f"{row['matches']} matches, p50={row['p50']}us, "
                f"p95={row['p95']}us, throttled={row['throttled']}"
            )
    if sink is not None:
        replay = replay_trace(sink.records)
        _write_trace(sink.records, args)
        print(f"trace: {len(sink.records)} records -> {args.trace_out} ({args.trace_format})")
        print(
            f"provenance: {replay['checked_serving']} serving decisions, "
            f"{replay['checked_eq7']} Eq.7 decisions, "
            f"{replay['checked_shed']} shed decisions replayed, "
            f"{len(replay['problems'])} inconsistencies"
        )
        for problem in replay["problems"]:
            print(f"  {problem}", file=sys.stderr)
        if replay["problems"]:
            return 1
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload](0)
    automaton = compile_query(workload.query)
    print(automaton.describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = _build_parser(_config_defaults(argv)).parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "describe":
        return _cmd_describe(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: compare strategies and inspect queries.

Usage::

    python -m repro.cli compare --workload q1 --policy greedy --cache cost
    python -m repro.cli compare --workload cluster --strategies BL1 Hybrid
    python -m repro.cli describe --workload fraud

``compare`` replays a named workload under the selected strategies and
prints the paper-style percentile table; ``describe`` prints the compiled
evaluation automaton (states, transitions, remote sites) of the workload's
query.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench.harness import ALL_STRATEGIES, ExperimentResult, run_strategy
from repro.core.config import CACHE_COST, CACHE_LRU, EiresConfig
from repro.engine.engine import GREEDY, NON_GREEDY
from repro.metrics.reporting import format_fault_summary
from repro.nfa.compiler import compile_query
from repro.remote.faults import FAULT_PROFILES
from repro.strategies.base import FAIL_CLOSED, FAIL_OPEN
from repro.workloads.base import Workload
from repro.workloads.bushfire import BushfireConfig, bushfire_workload
from repro.workloads.cluster import ClusterConfig, cluster_workload
from repro.workloads.fraud import FraudConfig, fraud_workload
from repro.workloads.synthetic import SyntheticConfig, q1_workload, q2_workload

__all__ = ["main", "WORKLOADS"]


def _q1(events: int) -> Workload:
    return q1_workload(SyntheticConfig(n_events=events, id_domain=20, window_events=400))


def _q2(events: int) -> Workload:
    return q2_workload(SyntheticConfig(n_events=events, id_domain=40, window_events=400))


WORKLOADS: dict[str, Callable[[int], Workload]] = {
    "q1": _q1,
    "q2": _q2,
    "fraud": lambda events: fraud_workload(FraudConfig(n_events=events)),
    "bushfire": lambda events: bushfire_workload(BushfireConfig(n_events=events)),
    "cluster": lambda events: cluster_workload(ClusterConfig(n_tasks=max(events // 6, 1))),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare fetching strategies")
    compare.add_argument("--workload", choices=sorted(WORKLOADS), default="q1")
    compare.add_argument("--events", type=int, default=6_000,
                         help="stream length (tasks x ~6 for 'cluster')")
    compare.add_argument("--policy", choices=(GREEDY, NON_GREEDY), default=GREEDY)
    compare.add_argument("--cache", choices=(CACHE_COST, CACHE_LRU), default=CACHE_COST)
    compare.add_argument("--capacity", type=int, default=None,
                         help="cache capacity (default: the workload's recommendation)")
    compare.add_argument("--strategies", nargs="+", default=list(ALL_STRATEGIES),
                         choices=ALL_STRATEGIES, metavar="STRATEGY")
    compare.add_argument("--fault-profile", default="none", metavar="PROFILE",
                         help="fault injection profile: one of "
                              f"{', '.join(sorted(FAULT_PROFILES))}, or a spec like "
                              "'drop:0.1' / 'drop:0.05,slow:0.1:8' (default: none)")
    compare.add_argument("--failure-mode", choices=(FAIL_CLOSED, FAIL_OPEN),
                         default=FAIL_CLOSED,
                         help="how predicates treat terminally unavailable data")
    compare.add_argument("--retry-attempts", type=int, default=3,
                         help="max fetch attempts incl. the first (default: 3)")

    describe = subparsers.add_parser("describe", help="print a workload's automaton")
    describe.add_argument("--workload", choices=sorted(WORKLOADS), default="q1")
    return parser


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload](args.events)
    capacity = args.capacity if args.capacity is not None else workload.notes["cache_capacity"]
    config = EiresConfig(
        policy=args.policy,
        cache_policy=args.cache,
        cache_capacity=capacity,
        fault_profile=args.fault_profile,
        failure_mode=args.failure_mode,
        retry_max_attempts=args.retry_attempts,
    )
    rows = [run_strategy(workload, strategy, config).summary() for strategy in args.strategies]
    title = f"{args.workload} / {args.policy} / {args.cache} cache (capacity {capacity})"
    if args.fault_profile != "none":
        title += f" / faults={args.fault_profile}"
    experiment = ExperimentResult(title, rows)
    print(experiment.table())
    if "Hybrid" in args.strategies and len(args.strategies) > 1:
        print()
        print(experiment.comparison("p50"))
    if args.fault_profile != "none":
        print()
        print(format_fault_summary(rows))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    workload = WORKLOADS[args.workload](0)
    automaton = compile_query(workload.query)
    print(automaton.describe())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "describe":
        return _cmd_describe(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

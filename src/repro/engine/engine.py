"""The CEP evaluation engine: the function ``f_Q`` of Eq. 1.

Processing one input event against the current partial matches produces new
partial matches and complete matches.  All work is charged against the
virtual clock (see :class:`~repro.engine.interface.CostModel`), so detection
latency is observable exactly as §2.2 defines it: the time between the
arrival of the last event of a match and its detection, including queueing
behind a busy engine and stalls on remote data.

Selection policies (§2.1)
-------------------------
*Greedy* (skip-till-any-match): a matching input event splits a partial
match — the extension and the unchanged original are both kept.
*Non-greedy* (skip-till-next-match): a matching event extends the partial
match in place; only non-matching events are skipped.

When a remote predicate cannot be decided locally, the strategy may postpone
it (§5.2).  Under the greedy policy the original is kept anyway and only the
extension carries the obligation.  Under the non-greedy policy the engine
cannot yet know whether the event should have been consumed, so it splits:
the extension carries ``p`` and the retained original carries ``NOT p``;
once the remote data decides ``p``, exactly one branch survives, keeping the
match set identical to an engine that had the data all along.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.engine.interface import (
    POSTPONED,
    CostModel,
    EngineStats,
    MatchRecord,
    StrategyProtocol,
)
from repro.events.event import Event
from repro.nfa.automaton import Automaton, Transition
from repro.nfa.run import Obligation, Run
from repro.sim.clock import VirtualClock

__all__ = ["Engine", "GREEDY", "NON_GREEDY"]

GREEDY = "greedy"
NON_GREEDY = "non_greedy"

_UNRESOLVED = "unresolved"
_SATISFIED = "satisfied"
_VIOLATED = "violated"


class Engine:
    """Automata-based pattern matcher with pluggable remote-data strategy."""

    def __init__(
        self,
        automaton: Automaton,
        clock: VirtualClock,
        cost_model: CostModel | None = None,
        policy: str = GREEDY,
        max_partial_matches: int | None = None,
        expiry_interval: int = 16,
    ) -> None:
        if policy not in (GREEDY, NON_GREEDY):
            raise ValueError(f"unknown selection policy {policy!r}")
        if expiry_interval < 1:
            raise ValueError(f"expiry interval must be >= 1: {expiry_interval}")
        self._expiry_interval = expiry_interval
        self.automaton = automaton
        self.clock = clock
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.policy = policy
        self.max_partial_matches = max_partial_matches
        self.stats = EngineStats()
        # Active partial matches, grouped by state index and — when the query
        # correlates via SAME[attr] — by that attribute's value.  Partition
        # indexing means an input event only visits runs it could actually
        # extend; runs of other partitions are never touched (this is the
        # standard partitioning optimisation of SASE-style engines).
        self._partition_attr = automaton.partition_attr
        self._runs: dict[int, dict[object, list[Run]]] = {}
        self._active = 0
        # Transitions indexed by (state index, event type) for fast dispatch.
        self._dispatch: dict[tuple[int, str], list[Transition]] = {}
        for transition in automaton.transitions:
            key = (transition.source.index, transition.event_type)
            self._dispatch.setdefault(key, []).append(transition)

    # -- public surface ------------------------------------------------------
    @property
    def active_runs(self) -> int:
        return self._active

    def runs_per_state(self) -> dict[int, int]:
        """Current number of partial matches per class (for #P_j monitoring)."""
        return {
            index: total
            for index, buckets in self._runs.items()
            if (total := sum(len(runs) for runs in buckets.values()))
        }

    def iter_runs(self):
        for buckets in self._runs.values():
            for runs in buckets.values():
                yield from runs

    def extendable_runs(self, event: Event) -> list[tuple[int, int]]:
        """``(state index, matching-partition run count)`` pairs for ``event``.

        The classes whose live partial matches the event's type can advance,
        with how many runs sit in the event's partition bucket — the inputs
        of the eSPICE-style event-utility score (load shedding) without
        touching any run.  States are reported in index order.
        """
        event_type = event.event_type
        partition = (
            event.attrs.get(self._partition_attr) if self._partition_attr is not None else None
        )
        pairs: list[tuple[int, int]] = []
        for state_index in sorted(self._runs):
            if (state_index, event_type) not in self._dispatch:
                continue
            runs = self._runs[state_index].get(partition)
            if runs:
                pairs.append((state_index, len(runs)))
        return pairs

    def process_event(self, event: Event, strategy: StrategyProtocol) -> list[MatchRecord]:
        """Advance the evaluation by one input event (the ``f_Q`` step)."""
        clock = self.clock
        cost = self.cost_model
        clock.advance(cost.base_event_cost)
        self.stats.events_processed += 1
        # Expiry is lazy: _step_run drops expired runs it touches, and a full
        # sweep every few events reclaims runs in states no event type hits.
        if self.stats.events_processed % self._expiry_interval == 0:
            self._expire(event, strategy)

        matches: list[MatchRecord] = []
        new_runs: list[Run] = []
        event_type = event.event_type
        partition = (
            event.attrs.get(self._partition_attr) if self._partition_attr is not None else None
        )

        for state_index in list(self._runs):
            transitions = self._dispatch.get((state_index, event_type))
            if not transitions:
                continue
            buckets = self._runs[state_index]
            runs = buckets.get(partition)
            if not runs:
                continue
            survivors = self._step_partition(
                runs, transitions, event, strategy, new_runs, matches
            )
            if survivors:
                buckets[partition] = survivors
            else:
                del buckets[partition]

        # Fresh runs from the root: the input event may start a new match.
        root_transitions = self._dispatch.get((0, event_type))
        if root_transitions:
            self._start_runs(root_transitions, event, strategy, new_runs, matches)

        for run in new_runs:
            self._add_run(run, strategy)
        if self.max_partial_matches is not None:
            self._shed(strategy)
        if self._active > self.stats.peak_active_runs:
            self.stats.peak_active_runs = self._active
        self.stats.matches_emitted += len(matches)
        return matches

    def flush(self, strategy: StrategyProtocol) -> None:
        """Drop all remaining partial matches (end of stream)."""
        for run in list(self.iter_runs()):
            strategy.on_run_dropped(run, "flushed")
        self._runs.clear()
        self._active = 0

    # -- run lifecycle ---------------------------------------------------------
    def _add_run(self, run: Run, strategy: StrategyProtocol) -> None:
        partition = self._partition_of(run)
        self._runs.setdefault(run.state.index, {}).setdefault(partition, []).append(run)
        self._active += 1
        self.stats.runs_created += 1
        strategy.on_run_created(run)

    def _partition_of(self, run: Run):
        if self._partition_attr is None:
            return None
        # All bound events share the SAME attribute; read it off any of them.
        event = next(iter(run.env.values()))
        return event.attrs.get(self._partition_attr)

    def _expire(self, event: Event, strategy: StrategyProtocol) -> None:
        """Drop runs whose window can no longer admit the current event."""
        window = self.automaton.window
        for buckets in self._runs.values():
            for partition in list(buckets):
                runs = buckets[partition]
                survivors = []
                for run in runs:
                    if window.admits(run.first_t, run.first_seq, event.t, event.seq):
                        survivors.append(run)
                    else:
                        self.stats.runs_expired += 1
                        self._active -= 1
                        strategy.on_run_dropped(run, "expired")
                if survivors:
                    buckets[partition] = survivors
                else:
                    del buckets[partition]

    def _shed(self, strategy: StrategyProtocol) -> None:
        """Safety valve: drop oldest runs above the configured cap.

        Disabled by default; experiments size their workloads so this never
        triggers (`stats.shed_runs` proves it).
        """
        excess = self._active - self.max_partial_matches
        if excess > 0:
            self.shed_lowest(excess, lambda run: float(run.first_seq), strategy)

    def shed_lowest(
        self,
        count: int,
        score: Callable[[Run], float],
        strategy: StrategyProtocol,
        reason: str = "shed",
    ) -> int:
        """Batch-evict the ``count`` lowest-scoring runs; returns the number shed.

        One pass collects ``(score, run_id)`` over every live run and a heap
        selects the victims, so shedding N runs costs one sweep plus
        O(runs log N) — not N full scans of the state×partition table.  Ties
        break on ``run_id`` (creation order), making the victim set a pure
        function of engine state.  Victims are dropped in ascending score
        order, each charged to ``stats.shed_runs`` and reported to the
        strategy under ``reason``.
        """
        if count <= 0 or not self._active:
            return 0
        scored: list[tuple[float, int, int, object, Run]] = []
        for state_index, buckets in self._runs.items():
            for partition, runs in buckets.items():
                for run in runs:
                    scored.append((score(run), run.run_id, state_index, partition, run))
        # run_id is unique, so comparisons never reach the partition object.
        victims = heapq.nsmallest(count, scored)
        doomed: dict[tuple[int, object], set[int]] = {}
        for _, run_id, state_index, partition, _run in victims:
            doomed.setdefault((state_index, partition), set()).add(run_id)
        for (state_index, partition), run_ids in doomed.items():
            buckets = self._runs[state_index]
            survivors = [run for run in buckets[partition] if run.run_id not in run_ids]
            if survivors:
                buckets[partition] = survivors
            else:
                del buckets[partition]
                if not buckets:
                    del self._runs[state_index]
        for _, _, _, _, run in victims:
            self._active -= 1
            self.stats.shed_runs += 1
            strategy.on_run_dropped(run, reason)
        return len(victims)

    # -- guard evaluation --------------------------------------------------------
    def _step_partition(
        self,
        runs: list[Run],
        transitions: list[Transition],
        event: Event,
        strategy: StrategyProtocol,
        new_runs: list[Run],
        matches: list[MatchRecord],
    ) -> list[Run]:
        """Step every run of one partition bucket; returns the survivors.

        The whole-partition granularity is the seam subclasses hook to batch
        work across runs (the vectorized backend pre-evaluates local guards
        for all runs of the bucket here) without touching the per-run
        semantics of :meth:`_step_run`.
        """
        survivors: list[Run] = []
        for run in runs:
            keep = self._step_run(run, transitions, event, strategy, new_runs, matches)
            if keep:
                survivors.append(run)
            else:
                self._active -= 1
        return survivors

    def _step_run(
        self,
        run: Run,
        transitions: list[Transition],
        event: Event,
        strategy: StrategyProtocol,
        new_runs: list[Run],
        matches: list[MatchRecord],
    ) -> bool:
        """Evaluate ``run`` against all type-matching transitions.

        Returns whether the original run survives.
        """
        if not self.automaton.window.admits(run.first_t, run.first_seq, event.t, event.seq):
            self.stats.runs_expired += 1
            strategy.on_run_dropped(run, "expired")
            return False
        # First give pending obligations a chance to resolve cheaply: data
        # may have arrived in the cache since the run was last touched.
        if run.obligations:
            status = self._check_obligations(run, strategy, blocking=False)
            if status is _VIOLATED:
                self.stats.runs_failed_obligation += 1
                strategy.on_run_dropped(run, "obligation_failed")
                return False

        definite_extension = False
        negated_groups: list[Obligation] = []
        for transition in transitions:
            outcome = self._try_transition(run, transition, event, strategy)
            if outcome is None:
                continue
            extension, postponed = outcome
            if postponed is None:
                definite_extension = True
            else:
                negated_groups.append(
                    Obligation(
                        postponed.predicates,
                        negated=True,
                        issued_at=self.clock.now,
                        env=postponed.env,
                        origin=postponed.origin,
                        ell_estimate=postponed.ell_estimate,
                    )
                )
            self._admit_extension(extension, strategy, new_runs, matches)

        if self.policy == GREEDY:
            return True
        # Non-greedy: a definite extension consumes the original; a
        # conditional one splits (original survives under NOT(p)).
        if definite_extension:
            self.stats.runs_consumed += 1
            strategy.on_run_dropped(run, "consumed")
            return False
        if negated_groups:
            run.add_obligations(tuple(negated_groups))
        return True

    def _try_transition(
        self,
        run: Run,
        transition: Transition,
        event: Event,
        strategy: StrategyProtocol,
    ) -> tuple[Run, Obligation | None] | None:
        """Attempt one guard; None on failure, else (extension, postponed).

        ``postponed`` is the obligation attached to the extension when some
        remote predicate was deferred, else None (a definite pass).
        """
        clock = self.clock
        clock.advance(self.cost_model.per_guard_cost)
        self.stats.guard_evaluations += 1

        env = dict(run.env)
        env[transition.binding] = event

        local_ok = True
        for predicate in transition.local_predicates:
            clock.advance(predicate.eval_cost)
            self.stats.predicate_evaluations += 1
            if not predicate.evaluate(env, _no_remote):
                local_ok = False
                break
        strategy.observe_guard(transition, local_ok)
        if not local_ok:
            return None
        return self._resolve_remote(run, transition, event, env, strategy)

    def _resolve_remote(
        self,
        run: Run,
        transition: Transition,
        event: Event,
        env: dict,
        strategy: StrategyProtocol,
    ) -> tuple[Run, Obligation | None] | None:
        """Resolve a guard's remote predicates and build the extension.

        The local predicates already passed; from here the strategy decides
        each remote predicate (fetch, cache hit, or postpone).  Split out of
        :meth:`_try_transition` so backends that batch the local phase
        re-enter the identical remote path.
        """
        clock = self.clock
        postponed_predicates = []
        for predicate in transition.remote_predicates:
            outcome = strategy.resolve_predicate(transition, predicate, run, env)
            if outcome is POSTPONED:
                postponed_predicates.append(predicate)
                continue
            self.stats.predicate_evaluations += 1
            clock.advance(predicate.eval_cost)
            if not outcome:
                return None

        obligation: Obligation | None = None
        if postponed_predicates:
            postponed_ell = getattr(strategy, "last_postpone_ell", 0.0)
            obligation = Obligation(
                tuple(postponed_predicates),
                negated=False,
                issued_at=clock.now,
                env=env,
                origin=transition,
                ell_estimate=postponed_ell,
            )
        extension = run.extend(
            transition,
            event,
            (obligation,) if obligation is not None else (),
            created_at=clock.now,
        )
        return extension, obligation

    def _start_runs(
        self,
        transitions: list[Transition],
        event: Event,
        strategy: StrategyProtocol,
        new_runs: list[Run],
        matches: list[MatchRecord],
    ) -> None:
        """Try to open a new partial match from the root state."""
        for transition in transitions:
            self.clock.advance(self.cost_model.per_guard_cost)
            self.stats.guard_evaluations += 1
            env = {transition.binding: event}
            ok = True
            for predicate in transition.local_predicates:
                self.clock.advance(predicate.eval_cost)
                self.stats.predicate_evaluations += 1
                if not predicate.evaluate(env, _no_remote):
                    ok = False
                    break
            strategy.observe_guard(transition, ok)
            if not ok:
                continue
            postponed = []
            failed = False
            for predicate in transition.remote_predicates:
                outcome = strategy.resolve_predicate(transition, predicate, None, env)
                if outcome is POSTPONED:
                    postponed.append(predicate)
                    continue
                self.stats.predicate_evaluations += 1
                self.clock.advance(predicate.eval_cost)
                if not outcome:
                    failed = True
                    break
            if failed:
                continue
            run = Run.start(transition.target, transition.binding, event, created_at=self.clock.now)
            if postponed:
                run.add_obligations(
                    (
                        Obligation(
                            tuple(postponed),
                            negated=False,
                            issued_at=self.clock.now,
                            env=env,
                            origin=transition,
                        ),
                    )
                )
            self._admit_extension(run, strategy, new_runs, matches)

    # -- extensions, finals, obligations ------------------------------------------
    def _admit_extension(
        self,
        extension: Run,
        strategy: StrategyProtocol,
        new_runs: list[Run],
        matches: list[MatchRecord],
    ) -> None:
        """Route a freshly built extension: emit a match and/or keep it live."""
        if extension.obligations and strategy.should_block_obligations(extension):
            status = self._check_obligations(extension, strategy, blocking=True)
            if status is _VIOLATED:
                self.stats.runs_failed_obligation += 1
                return

        if extension.state.is_final:
            self._emit(extension, strategy, matches)
        if extension.state.transitions:
            # Non-leaf final states keep matching longer alternatives.
            new_runs.append(extension)

    def _emit(self, run: Run, strategy: StrategyProtocol, matches: list[MatchRecord]) -> None:
        """Resolve whatever is still pending, then emit the match."""
        fetch_wait_before = getattr(strategy, "total_stall_time", 0.0)
        if run.obligations:
            status = self._check_obligations(run, strategy, blocking=True)
            if status is _VIOLATED:
                self.stats.matches_rejected += 1
                return
        last_event_t = max(event.t for event in run.env.values())
        fetch_wait = getattr(strategy, "total_stall_time", 0.0) - fetch_wait_before
        spans = getattr(strategy, "spans", None)
        span = spans.capture(last_event_t, self.clock.now) if spans is not None else None
        matches.append(
            MatchRecord(
                events=run.env,
                last_event_t=last_event_t,
                detected_at=self.clock.now,
                fetch_wait=fetch_wait,
                span=span,
            )
        )

    def _check_obligations(self, run: Run, strategy: StrategyProtocol, blocking: bool) -> str:
        """Try to discharge the run's obligations.

        Returns one of the module-level status strings.  Satisfied
        obligations are removed from the run; an unresolved one is kept
        (never under ``blocking=True``, where every predicate is decided).
        """
        blocking_round = blocking and bool(run.obligations)
        if blocking_round:
            # One concurrent fetch round for everything still missing: the
            # stall is the max outstanding latency, not the sum (BL3, §7.2).
            strategy.prepare_blocking(run)
        try:
            remaining: list[Obligation] = []
            for obligation in run.obligations:
                status = self._check_one_obligation(obligation, run, strategy, blocking)
                if status is _VIOLATED:
                    return _VIOLATED
                if status is _UNRESOLVED:
                    remaining.append(obligation)
            run.obligations = tuple(remaining)
            return _UNRESOLVED if remaining else _SATISFIED
        finally:
            if blocking_round:
                strategy.finish_blocking()

    def _check_one_obligation(
        self, obligation: Obligation, run: Run, strategy: StrategyProtocol, blocking: bool
    ) -> str:
        self.stats.obligation_checks += 1
        self.clock.advance(self.cost_model.per_obligation_cost)
        env = obligation.env
        any_unresolved = False
        for predicate in obligation.predicates:
            outcome = strategy.resolve_obligation_predicate(predicate, env, blocking)
            if outcome is POSTPONED:
                any_unresolved = True
                continue
            self.stats.predicate_evaluations += 1
            self.clock.advance(predicate.eval_cost)
            if outcome:
                continue
            # One predicate is definitely false: the group conjunction fails.
            return _SATISFIED if obligation.negated else _VIOLATED
        if any_unresolved:
            return _UNRESOLVED
        # All predicates resolved true.
        return _VIOLATED if obligation.negated else _SATISFIED


def _no_remote(key: tuple):
    raise AssertionError(
        f"local predicate attempted a remote lookup for {key!r}; "
        "the compiler must have misclassified a predicate"
    )

"""Tree-based execution backend (the paper's §9 future work).

The paper closes by proposing to instantiate EIRES for *tree-based execution
models* [ZStream, Mei & Madden 2009] "that define an order of operator
evaluation and a hierarchy of buffers", expecting the automata results to
carry over.  :class:`TreeEngine` is that instantiation for linear sequence
queries:

* each sequence position keeps a **buffer** of events that passed the
  position's single-binding predicates (partition-indexed under
  ``SAME[attr]``, window-pruned);
* when an event completes the *last* position, candidate matches are
  enumerated by joining right-to-left through the buffers, applying each
  multi-binding predicate as soon as its bindings are available;
* remote predicates go through the same
  :class:`~repro.strategies.base.FetchStrategy` objects as the automaton
  engine: blocking strategies stall at join time, postponing strategies
  (BL3 / LzEval / Hybrid) defer the predicate to emission, where one
  concurrent fetch round resolves everything outstanding;
* prefetching strategies are triggered on *buffer insertion* — the tree
  analogue of "a partial match reached the lookahead class": once an event
  carrying a reference key is buffered, its future use is anticipated.

Scope: linear ``SEQ`` patterns (no OR) under the greedy
(skip-till-any-match) policy — the natural semantics of buffered join trees,
which enumerate every combination.  The equivalence tests assert that the
tree backend detects exactly the matches of the automaton engine and of the
oracle reference.
"""

from __future__ import annotations

from repro.engine.interface import (
    POSTPONED,
    CostModel,
    EngineStats,
    MatchRecord,
    StrategyProtocol,
)
from repro.events.event import Event
from repro.nfa.automaton import Automaton, Transition
from repro.query.predicates import Predicate
from repro.sim.clock import VirtualClock

__all__ = ["TreeEngine"]


class _Position:
    """One sequence position: its transition and the buffered events."""

    __slots__ = ("index", "transition", "binding", "event_type", "local_single", "buffers")

    def __init__(self, index: int, transition: Transition) -> None:
        self.index = index
        self.transition = transition
        self.binding = transition.binding
        self.event_type = transition.event_type
        # Predicates that only read this position's own binding are applied
        # at insertion; everything else waits for the join.
        self.local_single = tuple(
            predicate
            for predicate in transition.local_predicates
            if predicate.bindings() <= {transition.binding}
        )
        # partition value -> list of events (None partition when unkeyed).
        self.buffers: dict[object, list[Event]] = {}


class TreeEngine:
    """Buffered join-tree evaluation of a linear sequence query."""

    def __init__(
        self,
        automaton: Automaton,
        clock: VirtualClock,
        cost_model: CostModel | None = None,
    ) -> None:
        chain = self._linear_chain(automaton)
        self.automaton = automaton
        self.clock = clock
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stats = EngineStats()
        self._positions = [_Position(i, transition) for i, transition in enumerate(chain)]
        self._partition_attr = automaton.partition_attr
        # Joining proceeds right-to-left, so a predicate becomes checkable
        # once the *leftmost* of its bindings is bound: anchor each predicate
        # (and each remote predicate) at that position.
        binding_position = {p.binding: p.index for p in self._positions}
        self._join_predicates: dict[int, list[Predicate]] = {p.index: [] for p in self._positions}
        self._remote_predicates: dict[int, list[tuple[Transition, Predicate]]] = {
            p.index: [] for p in self._positions
        }
        for position in self._positions:
            transition = position.transition
            for predicate in transition.local_predicates:
                if predicate.bindings() <= {position.binding}:
                    continue
                anchor = min(binding_position[b] for b in predicate.bindings())
                self._join_predicates[anchor].append(predicate)
            for predicate in transition.remote_predicates:
                bindings = predicate.bindings()
                anchor = min(binding_position[b] for b in bindings) if bindings else 0
                self._remote_predicates[anchor].append((transition, predicate))

    @staticmethod
    def _linear_chain(automaton: Automaton) -> list[Transition]:
        chain: list[Transition] = []
        state = automaton.root
        while state.transitions:
            if len(state.transitions) != 1:
                raise ValueError(
                    "the tree backend supports linear SEQ queries only; "
                    f"state {state.name} branches ({len(state.transitions)} transitions)"
                )
            transition = state.transitions[0]
            chain.append(transition)
            state = transition.target
        if not state.is_final:
            raise ValueError("query chain does not end in a final state")
        return chain

    # -- engine interface (same shape as repro.engine.engine.Engine) ----------
    @property
    def active_runs(self) -> int:
        return sum(
            len(events) for position in self._positions for events in position.buffers.values()
        )

    def runs_per_state(self) -> dict[int, int]:
        """Buffer sizes per position (consumed by the strategies' #P ticks)."""
        return {
            position.index + 1: sum(len(events) for events in position.buffers.values())
            for position in self._positions
        }

    def flush(self, strategy: StrategyProtocol) -> None:
        for position in self._positions:
            position.buffers.clear()

    def process_event(self, event: Event, strategy: StrategyProtocol) -> list[MatchRecord]:
        clock = self.clock
        clock.advance(self.cost_model.base_event_cost)
        self.stats.events_processed += 1
        partition = (
            event.attrs.get(self._partition_attr) if self._partition_attr is not None else None
        )
        matches: list[MatchRecord] = []
        for position in self._positions:
            if position.event_type != event.event_type:
                continue
            if not self._passes_single(position, event):
                continue
            if position.index < len(self._positions) - 1:
                self._insert(position, partition, event, strategy)
            else:
                # The final position joins instead of buffering (its events
                # can never be extended further).
                self._join(partition, event, strategy, matches)
        if self.active_runs > self.stats.peak_active_runs:
            self.stats.peak_active_runs = self.active_runs
        self.stats.matches_emitted += len(matches)
        return matches

    # -- buffering ---------------------------------------------------------------
    def _passes_single(self, position: _Position, event: Event) -> bool:
        self.stats.guard_evaluations += 1
        self.clock.advance(self.cost_model.per_guard_cost)
        env = {position.binding: event}
        for predicate in position.local_single:
            self.stats.predicate_evaluations += 1
            self.clock.advance(predicate.eval_cost)
            if not predicate.evaluate(env, _no_remote):
                return False
        return True

    def _insert(
        self, position: _Position, partition, event: Event, strategy: StrategyProtocol
    ) -> None:
        buffer = position.buffers.setdefault(partition, [])
        buffer.append(event)
        self.stats.runs_created += 1
        # Tree-model prefetch trigger: an inserted event whose payload keys a
        # remote reference anticipates that reference's use at join time.
        issue = getattr(strategy, "issue_prefetch", None)
        if issue is not None:
            for site in self.automaton.sites:
                if site.ref.key_binding == position.binding:
                    issue(site, site.ref.concrete_key({position.binding: event}))

    def _prune(self, buffer: list[Event], final_event: Event) -> None:
        window = self.automaton.window
        while buffer and not window.admits(
            buffer[0].t, buffer[0].seq, final_event.t, final_event.seq
        ):
            buffer.pop(0)
            self.stats.runs_expired += 1

    # -- joining --------------------------------------------------------------------
    def _join(
        self,
        partition,
        final_event: Event,
        strategy: StrategyProtocol,
        matches: list[MatchRecord],
    ) -> None:
        last_index = len(self._positions) - 1
        env = {self._positions[last_index].binding: final_event}
        deferred: list[tuple[Transition, Predicate]] = []
        if not self._apply_anchored(last_index, env, strategy, deferred):
            return
        self._descend(last_index - 1, partition, final_event, env, strategy, deferred, matches)

    def _descend(
        self,
        index: int,
        partition,
        final_event: Event,
        env: dict,
        strategy: StrategyProtocol,
        deferred: list[tuple[Transition, Predicate]],
        matches: list[MatchRecord],
    ) -> None:
        if index < 0:
            self._emit(env, final_event, strategy, deferred, matches)
            return
        position = self._positions[index]
        successor_binding = self._positions[index + 1].binding
        bound_successor = env[successor_binding]
        buffer = position.buffers.get(partition)
        if not buffer:
            return
        self._prune(buffer, final_event)
        for event in buffer:
            if event.seq >= bound_successor.seq:
                break  # buffers are seq-ordered; order preservation fails
            self.stats.guard_evaluations += 1
            self.clock.advance(self.cost_model.per_guard_cost)
            env[position.binding] = event
            local_deferred = list(deferred)
            if self._apply_anchored(index, env, strategy, local_deferred):
                self._descend(
                    index - 1, partition, final_event, env, strategy, local_deferred, matches
                )
        env.pop(position.binding, None)

    def _apply_anchored(
        self,
        index: int,
        env: dict,
        strategy: StrategyProtocol,
        deferred: list[tuple[Transition, Predicate]],
    ) -> bool:
        """Evaluate the predicates that became checkable at ``index``."""
        for predicate in self._join_predicates[index]:
            self.stats.predicate_evaluations += 1
            self.clock.advance(predicate.eval_cost)
            if not predicate.evaluate(env, _no_remote):
                return False
        for transition, predicate in self._remote_predicates[index]:
            outcome = strategy.resolve_predicate(transition, predicate, None, env)
            if outcome is POSTPONED:
                deferred.append((transition, predicate))
                continue
            self.stats.predicate_evaluations += 1
            self.clock.advance(predicate.eval_cost)
            if not outcome:
                return False
        return True

    def _emit(
        self,
        env: dict,
        final_event: Event,
        strategy: StrategyProtocol,
        deferred: list[tuple[Transition, Predicate]],
        matches: list[MatchRecord],
    ) -> None:
        snapshot = dict(env)
        if deferred:
            # One concurrent round for everything this candidate still needs.
            missing: list = []
            seen = set()
            for _transition, predicate in deferred:
                for key in predicate.remote_keys(snapshot):
                    if key not in seen and not strategy._available(key):
                        seen.add(key)
                        missing.append(key)
            staged = strategy._block_for(missing) if missing else {}
            try:
                strategy._staged.update(staged)
                for _transition, predicate in deferred:
                    self.stats.obligation_checks += 1
                    self.clock.advance(self.cost_model.per_obligation_cost)
                    outcome = strategy.resolve_obligation_predicate(
                        predicate, snapshot, blocking=True
                    )
                    self.stats.predicate_evaluations += 1
                    self.clock.advance(predicate.eval_cost)
                    if not outcome:
                        self.stats.matches_rejected += 1
                        return
            finally:
                strategy.finish_blocking()
        matches.append(
            MatchRecord(
                events=snapshot,
                last_event_t=final_event.t,
                detected_at=self.clock.now,
            )
        )


def _no_remote(key):
    raise AssertionError(
        f"local predicate attempted a remote lookup for {key!r} in the tree backend"
    )

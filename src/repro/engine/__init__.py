"""CEP engine: evaluation step, strategy interface, cost model."""

from repro.engine.engine import GREEDY, NON_GREEDY, Engine
from repro.engine.interface import (
    POSTPONED,
    CostModel,
    EngineStats,
    MatchRecord,
    StrategyProtocol,
)

__all__ = [
    "Engine",
    "GREEDY",
    "NON_GREEDY",
    "POSTPONED",
    "CostModel",
    "EngineStats",
    "MatchRecord",
    "StrategyProtocol",
]

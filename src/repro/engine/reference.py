"""Oracle reference matcher for validating the engine.

This module re-derives the query semantics of §2.1 *without* any of the
machinery the engine uses — no strategies, no obligations, no virtual time.
Remote data is resolved directly against the store (an oracle with zero
latency), and matches are enumerated:

* **greedy** (skip-till-any-match): exhaustive depth-first enumeration of
  all order-preserving event combinations that satisfy the guards and the
  window;
* **non-greedy** (skip-till-next-match): a forward simulation where each
  partial match is extended by the next satisfying event and only
  non-satisfying events are skipped.

The integration tests assert that every strategy, under either policy,
produces exactly the match sets computed here — i.e. that prefetching,
postponement, and obligation splitting never change *what* is detected,
only *when*.
"""

from __future__ import annotations

from typing import Mapping

from repro.events.event import Event
from repro.events.stream import Stream
from repro.nfa.automaton import Automaton, State, Transition
from repro.remote.store import RemoteStore

__all__ = ["reference_match_signatures"]


def reference_match_signatures(
    automaton: Automaton, stream: Stream, store: RemoteStore, policy: str
) -> set[tuple]:
    """All match signatures of ``automaton`` over ``stream`` under ``policy``.

    A signature is the canonical ``((binding, seq), ...)`` tuple that
    :meth:`repro.engine.interface.MatchRecord.signature` produces.
    """
    if policy == "greedy":
        return _greedy_matches(automaton, stream, store)
    if policy == "non_greedy":
        return _non_greedy_matches(automaton, stream, store)
    raise ValueError(f"unknown policy {policy!r}")


def _oracle(store: RemoteStore):
    def resolver(key):
        return store.lookup(key).value

    return resolver


def _guard_passes(
    transition: Transition, env: Mapping[str, Event], event: Event, resolver
) -> bool:
    if event.event_type != transition.event_type:
        return False
    candidate = dict(env)
    candidate[transition.binding] = event
    for predicate in transition.local_predicates + transition.remote_predicates:
        if not predicate.evaluate(candidate, resolver):
            return False
    return True


def _greedy_matches(automaton: Automaton, stream: Stream, store: RemoteStore) -> set[tuple]:
    resolver = _oracle(store)
    events = list(stream)
    window = automaton.window
    matches: set[tuple] = set()

    def extend(state: State, env: dict, first: Event, next_index: int) -> None:
        if state.is_final:
            matches.add(tuple(sorted((b, e.seq) for b, e in env.items())))
        if not state.transitions:
            return
        for index in range(next_index, len(events)):
            event = events[index]
            if not window.admits(first.t, first.seq, event.t, event.seq):
                break
            for transition in state.transitions:
                if _guard_passes(transition, env, event, resolver):
                    child_env = dict(env)
                    child_env[transition.binding] = event
                    extend(transition.target, child_env, first, index + 1)

    for start_index, event in enumerate(events):
        for transition in automaton.root.transitions:
            if _guard_passes(transition, {}, event, resolver):
                extend(
                    transition.target,
                    {transition.binding: event},
                    event,
                    start_index + 1,
                )
    return matches


class _SimRun:
    __slots__ = ("state", "env", "first")

    def __init__(self, state: State, env: dict, first: Event) -> None:
        self.state = state
        self.env = env
        self.first = first


def _non_greedy_matches(automaton: Automaton, stream: Stream, store: RemoteStore) -> set[tuple]:
    resolver = _oracle(store)
    window = automaton.window
    matches: set[tuple] = set()
    runs: list[_SimRun] = []

    for event in stream:
        survivors: list[_SimRun] = []
        created: list[_SimRun] = []
        for run in runs:
            if not window.admits(run.first.t, run.first.seq, event.t, event.seq):
                continue
            consumed = False
            for transition in run.state.transitions:
                if _guard_passes(transition, run.env, event, resolver):
                    consumed = True
                    child_env = dict(run.env)
                    child_env[transition.binding] = event
                    child = _SimRun(transition.target, child_env, run.first)
                    if child.state.is_final:
                        matches.add(tuple(sorted((b, e.seq) for b, e in child_env.items())))
                    if child.state.transitions:
                        created.append(child)
            if not consumed:
                survivors.append(run)
        for transition in automaton.root.transitions:
            if _guard_passes(transition, {}, event, resolver):
                child_env = {transition.binding: event}
                child = _SimRun(transition.target, child_env, event)
                if child.state.is_final:
                    matches.add(tuple(sorted((b, e.seq) for b, e in child_env.items())))
                if child.state.transitions:
                    created.append(child)
        runs = survivors + created
    return matches

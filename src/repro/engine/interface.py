"""Contracts between the CEP engine and the fetch strategies.

The engine implements the evaluation function ``f_Q`` of Eq. 1; everything
specific to §5's strategies (when to block, when to postpone, what to
prefetch) is delegated through the :class:`StrategyProtocol`.  Keeping the
boundary here avoids circular imports: both the engine and the strategy
implementations depend only on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol

from repro.events.event import Event
from repro.nfa.automaton import Transition
from repro.nfa.run import Run
from repro.query.predicates import Predicate

__all__ = [
    "POSTPONED",
    "CostModel",
    "MatchRecord",
    "EngineStats",
    "StrategyProtocol",
]


class _Postponed:
    """Sentinel: a remote predicate's evaluation was deferred (§5.2)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<POSTPONED>"


POSTPONED = _Postponed()


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs the engine charges while evaluating.

    ``per_guard_cost`` is the paper's ``l_pm`` — the additional evaluation
    latency per partial match (Eq. 8); the engine charges it for every
    (run, transition) guard evaluation, so the overhead of extra partial
    matches created by lazy evaluation is felt exactly where the cost model
    predicts it.
    """

    base_event_cost: float = 0.2
    per_guard_cost: float = 0.05
    per_obligation_cost: float = 0.02

    def __post_init__(self) -> None:
        for name in ("base_event_cost", "per_guard_cost", "per_obligation_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class MatchRecord:
    """One complete match, with its latency decomposition.

    ``span`` is the critical-path attribution captured by
    :class:`repro.obs.spans.SpanTracker` at emission time (a dict of
    :data:`~repro.obs.spans.SPAN_COMPONENTS` summing to :attr:`latency`);
    ``None`` when tracing is disabled.
    """

    __slots__ = ("events", "last_event_t", "detected_at", "fetch_wait", "span")

    def __init__(
        self,
        events: Mapping[str, Event],
        last_event_t: float,
        detected_at: float,
        fetch_wait: float = 0.0,
        span: dict[str, float] | None = None,
    ) -> None:
        self.events = dict(events)
        self.last_event_t = last_event_t
        self.detected_at = detected_at
        self.fetch_wait = fetch_wait
        self.span = span

    @property
    def latency(self) -> float:
        """Detection latency: last-event arrival to match detection (§2.2)."""
        return self.detected_at - self.last_event_t

    def signature(self) -> tuple:
        """Canonical identity of the match, for cross-strategy comparison."""
        return tuple(sorted((binding, event.seq) for binding, event in self.events.items()))

    def __repr__(self) -> str:
        bound = ",".join(f"{b}:{e.seq}" for b, e in sorted(self.events.items()))
        return f"MatchRecord([{bound}], latency={self.latency:.1f}us)"


@dataclass
class EngineStats:
    """Counters describing one engine run."""

    events_processed: int = 0
    guard_evaluations: int = 0
    predicate_evaluations: int = 0
    obligation_checks: int = 0
    runs_created: int = 0
    runs_expired: int = 0
    runs_consumed: int = 0
    runs_failed_obligation: int = 0
    matches_emitted: int = 0
    matches_rejected: int = 0
    peak_active_runs: int = 0
    shed_runs: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        data = {
            name: getattr(self, name)
            for name in (
                "events_processed",
                "guard_evaluations",
                "predicate_evaluations",
                "obligation_checks",
                "runs_created",
                "runs_expired",
                "runs_consumed",
                "runs_failed_obligation",
                "matches_emitted",
                "matches_rejected",
                "peak_active_runs",
                "shed_runs",
            )
        }
        data.update(self.extra)
        return data


class StrategyProtocol(Protocol):
    """What the engine requires of a fetch strategy.

    Implementations live in :mod:`repro.strategies`; see
    :class:`repro.strategies.base.FetchStrategy` for the shared behaviour.
    """

    name: str

    def resolve_predicate(
        self, transition: Transition, predicate: Predicate, run: Run, env: Mapping[str, Event]
    ) -> Any:
        """Evaluate a remote predicate: ``bool`` outcome or ``POSTPONED``."""

    def resolve_obligation_predicate(
        self, predicate: Predicate, env: Mapping[str, Event], blocking: bool
    ) -> Any:
        """Re-evaluate a postponed predicate; ``POSTPONED`` if still missing
        and ``blocking`` is False."""

    def should_block_obligations(self, run: Run) -> bool:
        """Whether a newly extended run's pending obligations must be
        resolved now rather than carried further (Alg. 4 line 15)."""

    def prepare_blocking(self, run: Run) -> None:
        """Stage one concurrent fetch round for a blocking resolution."""

    def finish_blocking(self) -> None:
        """Drop values staged by :meth:`prepare_blocking`."""

    def on_run_created(self, run: Run) -> None:
        """A partial match was created or extended (utility bookkeeping)."""

    def on_run_dropped(self, run: Run, reason: str) -> None:
        """A partial match left the system (expired/consumed/failed/matched)."""

    def observe_guard(self, transition: Transition, passed: bool) -> None:
        """A (run, transition) local guard was evaluated (rate monitoring)."""
